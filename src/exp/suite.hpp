// SPDX-License-Identifier: Apache-2.0
// Suite: the one CLI frontend every bench/example shares. A bench becomes
// a suite factory — register scenarios (directly or through a SweepGrid),
// optionally a finalize hook (derive cross-scenario columns after the
// sweep), a report hook (the human-readable paper-style tables) and gates
// (named acceptance checks over the whole sweep) — and `suite_main` does
// the rest:
//
//   bench --list                 enumerate scenarios
//   bench --filter SUBSTR        run the matching subset (repeatable)
//   bench --jobs N               worker threads (default: all host cores)
//   bench --csv / --json         output formats (default: CSV)
//   bench --out DIR              output directory (default: $MP3D_BENCH_OUT
//                                or the binary's directory)
//   bench --smoke                reduced workloads, same gates
//   bench --progress             per-scenario progress on stderr
//   bench --timeline CYCLES      sample windowed counter timelines every
//                                CYCLES cycles -> <suite>_timeline.csv
//   bench --trace FILE           structured event trace (Chrome trace JSON,
//                                Perfetto-loadable) -> FILE under --out
//
// Output files are `<suite name>.csv` / `<suite name>.json`; the directory
// is created on demand and any write failure is a hard error (nonzero
// exit), so CI can never pass on empty artifacts. CSV bytes are identical
// for any --jobs value. Telemetry (--timeline/--trace) forces --jobs 1 so
// run labels and trace track ids are deterministic.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweep.hpp"

namespace mp3d::exp {

struct CliOptions {
  bool list = false;
  std::vector<std::string> filters;
  u32 jobs = 0;  ///< 0 = default_jobs()
  bool csv = true;
  bool json = false;
  std::string out_dir;  ///< empty = $MP3D_BENCH_OUT or the binary's directory
  bool smoke = false;
  bool progress = false;
  u64 timeline_window = 0;  ///< --timeline: sampling window [cycles], 0 = off
  std::string trace_file;   ///< --trace: event-trace JSON filename, "" = off
  std::vector<std::string> extras;  ///< suite-specific flags that were set

  bool extra(const std::string& flag) const;
  bool telemetry() const { return timeline_window > 0 || !trace_file.empty(); }
};

struct Suite {
  std::string name;   ///< output file stem, e.g. "fig8_energy"
  std::string title;  ///< printed above the report
  Registry registry;

  /// Post-sweep, single-threaded: derive cross-scenario columns/metrics.
  /// Runs on filtered sweeps too — guard against missing scenarios.
  std::function<void(SweepReport&)> finalize;
  /// Human-readable report; the default prints one table of all rows.
  std::function<void(const SweepReport&)> report;

  /// Named acceptance check; returns "" on pass, an explanation on
  /// failure. Gates run only on unfiltered sweeps.
  void gate(std::string name, std::function<std::string(const SweepReport&)> check);

  std::vector<std::pair<std::string, std::function<std::string(const SweepReport&)>>>
      gates;

  /// When nonempty, unfiltered runs also write `BENCH_<perf_record>.json`
  /// (a prof::PerfRecord: wall clock, scenarios/sec, sim Mcycles/s and one
  /// workload entry per successful scenario) next to the data files, so
  /// CI's artifact trail records the sweep's simulation throughput over
  /// time and `perf_compare` can gate regressions against a baseline.
  std::string perf_record;
};

/// Parse argv. Returns "" on success or an error message; `extra_flags`
/// lists additional boolean flags the suite understands (e.g. "--measure").
std::string parse_cli(int argc, char** argv, CliOptions& options,
                      const std::vector<std::string>& extra_flags);

/// The whole frontend: parse, build the suite, list/filter/run, finalize,
/// report, gates, outputs. Returns the process exit code.
int suite_main(int argc, char** argv,
               const std::function<Suite(const CliOptions&)>& make_suite,
               const std::vector<std::string>& extra_flags = {});

/// Resolved output directory: `cli_out` if nonempty, else $MP3D_BENCH_OUT,
/// else the running binary's directory (never the source tree), else ".".
std::string out_dir(const std::string& cli_out = {});

/// Write `content` to `path`, creating parent directories. Returns "" on
/// success or an error message.
std::string write_text_file(const std::string& path, const std::string& content);

/// Serialize a finished sweep as a JSON report (scenarios, rows, metrics,
/// gate verdicts, timings).
std::string report_to_json(const Suite& suite, const SweepReport& report,
                           const std::vector<std::pair<std::string, std::string>>&
                               gate_results,
                           const CliOptions& options);

}  // namespace mp3d::exp
