// SPDX-License-Identifier: Apache-2.0
// Scenario: one named, self-describing experiment — typically a cluster
// shape x kernel builder x workload scaled to capacity x operating point.
// A scenario's run() is completely self-contained (it builds its own
// cluster, simulator, models, ...), shares no mutable state with any other
// scenario, and is therefore safe to farm out to a worker thread.
//
// The Registry holds a suite's scenarios under unique names, preserving
// registration order — the order results are reported in, regardless of
// which threads ran what.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/row.hpp"

namespace mp3d::exp {

/// What one scenario produces: result rows (CSV/report cells, already
/// formatted) plus named numeric metrics for gates and derived columns.
///
/// sim_cycles / sim_instret credit the scenario with the simulated work it
/// performed; the suite divides them by host wall clock into Mcycles/s /
/// Minstr/s for the JSON report, summary line and BENCH perf record. Both
/// are deterministic (they never feed the CSV rows, which must stay
/// byte-identical across hosts and --jobs values).
struct ScenarioOutput {
  std::vector<Row> rows;
  std::vector<std::pair<std::string, double>> metrics;
  u64 sim_cycles = 0;    ///< simulated cycles this scenario advanced
  u64 sim_instret = 0;   ///< simulated instructions retired
  /// Wall-clock override for throughput accounting (ms). Scenarios that
  /// repeat their measured region internally (min-of-N) report the best
  /// rep here; 0 = use the runner-measured ScenarioResult::wall_ms.
  double perf_wall_ms = 0.0;

  ScenarioOutput& row(Row r) {
    rows.push_back(std::move(r));
    return *this;
  }
  ScenarioOutput& metric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
    return *this;
  }
  /// Credit simulated work (cumulative across calls).
  ScenarioOutput& sim(u64 cycles, u64 instret = 0) {
    sim_cycles += cycles;
    sim_instret += instret;
    return *this;
  }
};

struct Scenario {
  std::string name;         ///< unique within the suite, e.g. "fig8/4MiB"
  std::string description;  ///< one line for --list
  std::function<ScenarioOutput()> run;
};

class Registry {
 public:
  /// Register a scenario. Throws std::invalid_argument on a duplicate or
  /// empty name.
  void add(Scenario scenario);
  void add(std::string name, std::string description,
           std::function<ScenarioOutput()> run);

  const std::vector<Scenario>& scenarios() const { return scenarios_; }
  bool contains(const std::string& name) const;

  /// Scenarios whose name contains any of `filters` (all scenarios when
  /// `filters` is empty), in registration order.
  std::vector<Scenario> match(const std::vector<std::string>& filters) const;

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace mp3d::exp
