// SPDX-License-Identifier: Apache-2.0
#include "exp/scenarios_qos.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "arch/global_mem.hpp"
#include "common/stats.hpp"
#include "exp/sweep.hpp"
#include "obs/collector.hpp"
#include "obs/telemetry.hpp"
#include "qos/adaptive_share.hpp"

namespace mp3d::exp {

arch::AdaptiveShareConfig qos_soak_controller(u32 p99_budget) {
  arch::AdaptiveShareConfig cfg;
  cfg.enabled = true;
  cfg.min_pct = 0;
  cfg.max_pct = 40;
  cfg.step_pct = 10;
  // Short windows and a moderate ceiling bound the extra backlog a raised
  // share can add at burst onset: the controller halves within 16 cycles
  // of the first budget violation and is back at the floor inside ~100.
  cfg.window = 16;
  cfg.p99_budget = p99_budget;
  cfg.raise_stall_pct = 10;
  cfg.raise_demand_pct = 50;
  return cfg;
}

QosSoakResult run_qos_soak(const QosSoakParams& params) {
  arch::GmemArbiterConfig arb;
  arb.bulk_min_pct = params.bulk_min_pct;
  arb.deficit_cap_cycles = params.deficit_cap_cycles;
  arch::GlobalMemory gmem(0x8000'0000u, MiB(1), params.bytes_per_cycle,
                          params.latency, arb);
  std::unique_ptr<qos::AdaptiveShareController> controller;
  if (params.qos.enabled) {
    controller = std::make_unique<qos::AdaptiveShareController>(params.qos, gmem);
  }

  arch::TelemetryConfig tcfg = params.telemetry;
  if (!tcfg.enabled() && obs::global_request_active()) {
    tcfg = obs::global_request().to_config();
  }
  std::shared_ptr<obs::Telemetry> telemetry;
  obs::Timeline* timeline = nullptr;
  if (tcfg.enabled()) {
    telemetry = std::make_shared<obs::Telemetry>(tcfg);
    timeline = telemetry->timeline();
    if (obs::Trace* trace = telemetry->trace(); trace != nullptr) {
      const u32 bulk = trace->add_track("gmem", 0, "bulk", 0);
      const u32 scalar = trace->add_track("gmem", 0, "scalar", 1);
      gmem.set_trace(trace, bulk, scalar);
      if (controller != nullptr) {
        controller->set_trace(trace, trace->add_track("gmem", 0, "qos", 2));
      }
    }
  }
  u64 next_sample = timeline != nullptr ? tcfg.sample_window : sim::kNever;
  std::vector<u64> window_latencies;

  std::vector<arch::MemResponse> responses;
  std::vector<u32> refills;
  std::deque<u64> issue_cycles;  ///< FIFO service order = response order
  std::vector<u64> latencies;
  QosSoakResult result;
  result.bulk_tenant_bytes.assign(params.bulk_rates_pct.size(), 0);

  const auto sample_window = [&](u64 cycle) {
    sim::CounterSet totals;
    gmem.add_counters(totals);
    if (controller != nullptr) {
      controller->add_counters(totals);
    }
    totals.set("cycles", cycle);
    std::vector<std::pair<std::string, double>> gauges;
    gauges.emplace_back("scalar_p50", percentile(window_latencies, 0.50));
    gauges.emplace_back("scalar_p99", percentile(window_latencies, 0.99));
    gauges.emplace_back("scalar_inflight",
                        static_cast<double>(issue_cycles.size()));
    gauges.emplace_back("bulk_share_pct",
                        static_cast<double>(gmem.arbiter().bulk_min_pct));
    timeline->sample(cycle, totals, std::move(gauges));
    window_latencies.clear();
  };

  // Both tenant classes accrue offered bytes in hundredths so fractional
  // per-cycle rates stream without rounding drift (as in run_gmem_soak).
  u64 scalar_acc_x100 = 0;
  std::vector<u64> bulk_backlog_x100(params.bulk_rates_pct.size(), 0);
  std::size_t bulk_rr = 0;  ///< round-robin service pointer over tenants
  u64 share_acc = 0;
  u32 next_addr = 0;
  for (u64 cycle = 1; cycle <= params.cycles; ++cycle) {
    const bool in_burst =
        (cycle - 1) % params.burst_period < params.burst_cycles;
    const u32 load = in_burst ? params.burst_load_pct : params.quiet_load_pct;
    scalar_acc_x100 += static_cast<u64>(params.bytes_per_cycle) * load;
    while (scalar_acc_x100 >= 400) {  // one word request = 4 B = 400 x100
      scalar_acc_x100 -= 400;
      arch::MemRequest req;
      req.addr = 0x8000'0000u + next_addr;
      next_addr = (next_addr + 4) % static_cast<u32>(KiB(64));
      req.op = isa::Op::kLw;
      gmem.enqueue(req, cycle);
      issue_cycles.push_back(cycle);
    }
    u64 bulk_demand = 0;
    for (std::size_t i = 0; i < bulk_backlog_x100.size(); ++i) {
      bulk_backlog_x100[i] +=
          static_cast<u64>(params.bytes_per_cycle) * params.bulk_rates_pct[i];
      bulk_demand += bulk_backlog_x100[i] / 100;
    }

    responses.clear();
    refills.clear();
    gmem.step(cycle, responses, refills, bulk_demand);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      const u64 latency = cycle - issue_cycles.front();
      latencies.push_back(latency);
      if (controller != nullptr) {
        controller->observe_scalar_latency(latency);
      }
      if (timeline != nullptr) {
        window_latencies.push_back(latency);
      }
      issue_cycles.pop_front();
    }

    const u32 want = static_cast<u32>(
        std::min<u64>(bulk_demand, params.bytes_per_cycle));
    u64 granted = gmem.claim_bulk(want, cycle);
    // Deliver the granted bytes to the tenants round-robin so no single
    // stream monopolises the claim when backlogs saturate.
    for (std::size_t n = 0; n < bulk_backlog_x100.size() && granted > 0; ++n) {
      const std::size_t i = (bulk_rr + n) % bulk_backlog_x100.size();
      const u64 take = std::min<u64>(granted, bulk_backlog_x100[i] / 100);
      bulk_backlog_x100[i] -= take * 100;
      result.bulk_tenant_bytes[i] += take;
      granted -= take;
    }
    if (!bulk_backlog_x100.empty()) {
      bulk_rr = (bulk_rr + 1) % bulk_backlog_x100.size();
    }

    if (controller != nullptr) {
      controller->step(cycle);
    }
    share_acc += gmem.arbiter().bulk_min_pct;
    if (cycle >= next_sample) {
      sample_window(cycle);
      next_sample += tcfg.sample_window;
    }
  }

  if (telemetry != nullptr) {
    gmem.close_trace_spans(params.cycles);
    if (timeline != nullptr && params.cycles >= timeline->next_lo()) {
      sample_window(params.cycles);  // final partial window
    }
    obs::collect_run(*telemetry);  // no-op without an active global request
    result.telemetry = telemetry;
  }

  sim::CounterSet counters;
  gmem.add_counters(counters);
  result.scalar_completed = latencies.size();
  result.scalar_backlog_end = issue_cycles.size();
  result.scalar_bytes = gmem.scalar_bytes();
  result.bulk_bytes = gmem.bulk_bytes();
  result.bulk_stall_cycles = counters.get("gmem.bulk_stall_cycles");
  result.scalar_p50 = percentile(latencies, 0.50);
  result.scalar_p99 = percentile(latencies, 0.99);
  const double channel_bytes =
      static_cast<double>(params.cycles) * params.bytes_per_cycle;
  result.bulk_throughput = static_cast<double>(result.bulk_bytes) / channel_bytes;
  result.channel_util =
      static_cast<double>(gmem.bytes_transferred()) / channel_bytes;
  result.share_final = gmem.arbiter().bulk_min_pct;
  result.share_avg_pct =
      static_cast<double>(share_acc) / static_cast<double>(params.cycles);
  result.adjustments = controller != nullptr ? controller->adjustments() : 0;
  return result;
}

std::vector<u64> gmem_qos_shares(bool smoke) {
  return smoke ? std::vector<u64>{0, 50} : std::vector<u64>{0, 25, 50};
}

std::vector<u64> gmem_qos_bws(bool smoke) {
  return smoke ? std::vector<u64>{4, 16} : std::vector<u64>{4, 16, 64};
}

std::vector<u64> gmem_qos_loads(bool smoke) {
  return smoke ? std::vector<u64>{180} : std::vector<u64>{140, 180};
}

std::string gmem_qos_static_name(u64 share, u64 load, u64 bw) {
  return "qos_static/share=" + std::to_string(share) +
         "/load=" + std::to_string(load) + "/bw=" + std::to_string(bw);
}

std::string gmem_qos_adaptive_name(u64 load, u64 bw) {
  return "qos_adaptive/load=" + std::to_string(load) +
         "/bw=" + std::to_string(bw);
}

namespace {

ScenarioOutput run_qos_scenario(bool adaptive, u64 share, u64 load, u64 bw,
                                bool smoke) {
  QosSoakParams p;
  p.bytes_per_cycle = static_cast<u32>(bw);
  p.burst_load_pct = static_cast<u32>(load);
  p.cycles = static_cast<u64>(p.burst_period) * (smoke ? 4 : 8);
  if (adaptive) {
    p.qos = qos_soak_controller();
    p.bulk_min_pct = p.qos.min_pct;
  } else {
    p.bulk_min_pct = static_cast<u32>(share);
  }
  const QosSoakResult r = run_qos_soak(p);

  ScenarioOutput out;
  out.sim(p.cycles);
  out.metric("adaptive", adaptive ? 1.0 : 0.0)
      .metric("share", adaptive ? -1.0 : static_cast<double>(share))
      .metric("load", static_cast<double>(load))
      .metric("bw", static_cast<double>(bw))
      .metric("scalar_p50", r.scalar_p50)
      .metric("scalar_p99", r.scalar_p99)
      .metric("scalar_bytes", static_cast<double>(r.scalar_bytes))
      .metric("bulk_bytes", static_cast<double>(r.bulk_bytes))
      .metric("bulk_throughput", r.bulk_throughput)
      .metric("channel_util", r.channel_util)
      .metric("backlog_end", static_cast<double>(r.scalar_backlog_end))
      .metric("share_avg", r.share_avg_pct)
      .metric("adjustments", static_cast<double>(r.adjustments));
  Row row;
  row.cell("family", adaptive ? std::string("qos_adaptive")
                              : std::string("qos_static"))
      .cell("share", adaptive ? std::string("auto") : std::to_string(share))
      .cell("load", load)
      .cell("bw", bw)
      .cell("scalar_p50", r.scalar_p50, 1)
      .cell("scalar_p99", r.scalar_p99, 1)
      .cell("bulk_tput", r.bulk_throughput, 4)
      .cell("share_avg", r.share_avg_pct, 1)
      .cell("adjust", r.adjustments);
  out.row(std::move(row));
  return out;
}

}  // namespace

void register_gmem_qos_scenarios(Registry& registry, bool smoke) {
  // Static Pareto points: {share} x {burst load} x {bandwidth}.
  SweepGrid statics;
  statics.axis("share", gmem_qos_shares(smoke));
  statics.axis("load", gmem_qos_loads(smoke));
  statics.axis("bw", gmem_qos_bws(smoke));
  statics.expand(registry, [smoke](const SweepPoint& p) {
    const u64 share = p.u("share");
    const u64 load = p.u("load");
    const u64 bw = p.u("bw");
    Scenario s;
    s.name = gmem_qos_static_name(share, load, bw);
    s.description = "mixed tenancy at a fixed bulk share (Pareto point)";
    s.run = [share, load, bw, smoke]() {
      return run_qos_scenario(/*adaptive=*/false, share, load, bw, smoke);
    };
    return s;
  });

  // The controller, on the same {burst load} x {bandwidth} grid.
  SweepGrid adaptive;
  adaptive.axis("load", gmem_qos_loads(smoke));
  adaptive.axis("bw", gmem_qos_bws(smoke));
  adaptive.expand(registry, [smoke](const SweepPoint& p) {
    const u64 load = p.u("load");
    const u64 bw = p.u("bw");
    Scenario s;
    s.name = gmem_qos_adaptive_name(load, bw);
    s.description = "mixed tenancy under the adaptive share controller";
    s.run = [load, bw, smoke]() {
      return run_qos_scenario(/*adaptive=*/true, 0, load, bw, smoke);
    };
    return s;
  });
}

}  // namespace mp3d::exp
