// SPDX-License-Identifier: Apache-2.0
#include "exp/scenarios_gmem.hpp"

#include <algorithm>
#include <deque>

#include "arch/cluster.hpp"
#include "arch/global_mem.hpp"
#include "common/stats.hpp"
#include "exp/sweep.hpp"
#include "kernels/matmul.hpp"
#include "kernels/simple_kernels.hpp"
#include "obs/collector.hpp"
#include "obs/telemetry.hpp"

namespace mp3d::exp {

GmemSoakResult run_gmem_soak(const GmemSoakParams& params) {
  arch::GmemArbiterConfig arb;
  arb.bulk_min_pct = params.bulk_min_pct;
  arb.deficit_cap_cycles = params.deficit_cap_cycles;
  arch::GlobalMemory gmem(0x8000'0000u, MiB(1), params.bytes_per_cycle,
                          params.latency, arb);

  arch::TelemetryConfig tcfg = params.telemetry;
  if (!tcfg.enabled() && obs::global_request_active()) {
    tcfg = obs::global_request().to_config();
  }
  std::shared_ptr<obs::Telemetry> telemetry;
  obs::Timeline* timeline = nullptr;
  if (tcfg.enabled()) {
    telemetry = std::make_shared<obs::Telemetry>(tcfg);
    timeline = telemetry->timeline();
    if (obs::Trace* trace = telemetry->trace(); trace != nullptr) {
      const u32 bulk = trace->add_track("gmem", 0, "bulk", 0);
      const u32 scalar = trace->add_track("gmem", 0, "scalar", 1);
      gmem.set_trace(trace, bulk, scalar);
    }
  }
  u64 next_sample = timeline != nullptr ? tcfg.sample_window : sim::kNever;
  std::vector<u64> window_latencies;

  std::vector<arch::MemResponse> responses;
  std::vector<u32> refills;
  std::deque<u64> issue_cycles;  ///< FIFO service order = response order
  std::vector<u64> latencies;
  GmemSoakResult result;

  const auto sample_window = [&](u64 cycle) {
    sim::CounterSet totals;
    gmem.add_counters(totals);
    totals.set("cycles", cycle);
    std::vector<std::pair<std::string, double>> gauges;
    gauges.emplace_back("scalar_p50", percentile(window_latencies, 0.50));
    gauges.emplace_back("scalar_p99", percentile(window_latencies, 0.99));
    gauges.emplace_back("scalar_inflight",
                        static_cast<double>(issue_cycles.size()));
    timeline->sample(cycle, totals, std::move(gauges));
    window_latencies.clear();
  };

  // The scalar generator accrues offered bytes in hundredths so fractional
  // per-cycle loads (e.g. 90 % of 2 B/cycle) stream without rounding drift.
  u64 scalar_acc_x100 = 0;
  u32 next_addr = 0;
  for (u64 cycle = 1; cycle <= params.cycles; ++cycle) {
    scalar_acc_x100 +=
        static_cast<u64>(params.bytes_per_cycle) * params.scalar_load_pct;
    while (scalar_acc_x100 >= 400) {  // one word request = 4 B = 400 x100
      scalar_acc_x100 -= 400;
      arch::MemRequest req;
      req.addr = 0x8000'0000u + next_addr;
      next_addr = (next_addr + 4) % static_cast<u32>(KiB(64));
      req.op = isa::Op::kLw;
      gmem.enqueue(req, cycle);
      issue_cycles.push_back(cycle);
    }
    responses.clear();
    refills.clear();
    const u64 demand = params.bulk_active ? (u64{1} << 30) : 0;
    gmem.step(cycle, responses, refills, demand);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      const u64 latency = cycle - issue_cycles.front();
      latencies.push_back(latency);
      if (timeline != nullptr) {
        window_latencies.push_back(latency);
      }
      issue_cycles.pop_front();
    }
    if (params.bulk_active) {
      gmem.claim_bulk(params.bytes_per_cycle, cycle);
    }
    if (cycle >= next_sample) {
      sample_window(cycle);
      next_sample += tcfg.sample_window;
    }
  }

  if (telemetry != nullptr) {
    gmem.close_trace_spans(params.cycles);
    if (timeline != nullptr && params.cycles >= timeline->next_lo()) {
      sample_window(params.cycles);  // final partial window
    }
    obs::collect_run(*telemetry);  // no-op without an active global request
    result.telemetry = telemetry;
  }

  sim::CounterSet counters;
  gmem.add_counters(counters);
  result.scalar_completed = latencies.size();
  result.scalar_bytes = gmem.scalar_bytes();
  result.bulk_bytes = gmem.bulk_bytes();
  result.bulk_stall_cycles = counters.get("gmem.bulk_stall_cycles");
  result.scalar_p50 = percentile(latencies, 0.50);
  result.scalar_p99 = percentile(latencies, 0.99);
  result.bulk_share =
      static_cast<double>(result.bulk_bytes) /
      (static_cast<double>(params.cycles) * params.bytes_per_cycle);
  return result;
}

std::vector<u64> gmem_arbiter_shares(bool smoke) {
  return smoke ? std::vector<u64>{0, 50} : std::vector<u64>{0, 25, 50};
}

std::vector<u64> gmem_arbiter_bws(bool smoke) {
  return smoke ? std::vector<u64>{4, 16} : std::vector<u64>{4, 16, 64};
}

std::vector<std::string> gmem_arbiter_kernels(bool smoke) {
  return smoke ? std::vector<std::string>{"matmul"}
               : std::vector<std::string>{"matmul", "axpy"};
}

std::string gmem_soak_sat_name(u64 share, u64 bw) {
  return "soak_sat/share=" + std::to_string(share) + "/bw=" + std::to_string(bw);
}

std::string gmem_soak_fair_name(u64 share, u64 bw) {
  return "soak_fair/share=" + std::to_string(share) + "/bw=" + std::to_string(bw);
}

std::string gmem_kernel_name(const std::string& kernel, u64 share, u64 bw) {
  return "kern/" + kernel + "/share=" + std::to_string(share) +
         "/bw=" + std::to_string(bw);
}

namespace {

ScenarioOutput run_soak_scenario(u64 share, u64 bw, bool saturated, bool smoke) {
  GmemSoakParams p;
  p.bytes_per_cycle = static_cast<u32>(bw);
  p.bulk_min_pct = static_cast<u32>(share);
  p.cycles = smoke ? 5000 : 20000;
  if (saturated) {
    p.scalar_load_pct = kSoakSaturatedLoadPct;
  } else {
    // Offer the scalar class a stable fraction of its own guarantee.
    p.scalar_load_pct = static_cast<u32>(
        (100 - share) * kSoakFairLoadFraction / 100);
  }
  const GmemSoakResult r = run_gmem_soak(p);

  ScenarioOutput out;
  out.sim(p.cycles);
  out.metric("share", static_cast<double>(share))
      .metric("bw", static_cast<double>(bw))
      .metric("bulk_share", r.bulk_share)
      .metric("scalar_p50", r.scalar_p50)
      .metric("scalar_p99", r.scalar_p99)
      .metric("scalar_bytes", static_cast<double>(r.scalar_bytes))
      .metric("bulk_bytes", static_cast<double>(r.bulk_bytes))
      .metric("bulk_stall_cycles", static_cast<double>(r.bulk_stall_cycles))
      .metric("gmem_latency", static_cast<double>(p.latency));
  Row row;
  row.cell("family", saturated ? std::string("soak_sat") : std::string("soak_fair"))
      .cell("share", share)
      .cell("bw", bw)
      .cell("bulk_share", r.bulk_share, 4)
      .cell("scalar_p50", r.scalar_p50, 1)
      .cell("scalar_p99", r.scalar_p99, 1)
      .cell("bulk_stalls", r.bulk_stall_cycles);
  out.row(std::move(row));
  return out;
}

ScenarioOutput run_kernel_scenario(const std::string& kernel, u64 share, u64 bw,
                                   bool smoke) {
  arch::ClusterConfig cfg = arch::ClusterConfig::mini();
  cfg.perfect_icache = true;  // isolate data traffic on the swept channel
  cfg.gmem_bytes_per_cycle = static_cast<u32>(bw);
  cfg.gmem_arbiter.bulk_min_pct = static_cast<u32>(share);
  arch::Cluster cluster(cfg);

  kernels::Kernel k;
  if (kernel == "matmul") {
    kernels::MatmulParams p;
    p.m = 64;
    p.t = 16;
    k = kernels::build_matmul_dma(cfg, p);
  } else if (kernel == "axpy") {
    k = kernels::build_axpy_staged(cfg, smoke ? 1024 : 4096, 3, /*use_dma=*/true);
  } else {
    throw std::invalid_argument("unknown gmem_arbiter kernel: " + kernel);
  }
  const arch::RunResult r = kernels::run_kernel(cluster, k, 100'000'000);

  ScenarioOutput out;
  out.sim(r.cycles, r.total_instret());
  out.metric("share", static_cast<double>(share))
      .metric("bw", static_cast<double>(bw))
      .metric("cycles", static_cast<double>(r.cycles))
      .metric("gmem_bytes", static_cast<double>(r.counters.get("gmem.bytes")))
      .metric("scalar_bytes",
              static_cast<double>(r.counters.get("gmem.scalar_bytes")))
      .metric("bulk_bytes", static_cast<double>(r.counters.get("gmem.bulk_bytes")));
  Row row;
  row.cell("family", std::string("kern"))
      .cell("kernel", kernel)
      .cell("share", share)
      .cell("bw", bw)
      .cell("cycles", r.cycles)
      .cell("scalar_bytes", r.counters.get("gmem.scalar_bytes"))
      .cell("bulk_bytes", r.counters.get("gmem.bulk_bytes"));
  out.row(std::move(row));
  return out;
}

}  // namespace

void register_gmem_arbiter_scenarios(Registry& registry, bool smoke) {
  // Synthetic soaks: {family} x {share bound} x {bandwidth}.
  SweepGrid soaks;
  soaks.axis("family", std::vector<std::string>{"soak_sat", "soak_fair"});
  soaks.axis("share", gmem_arbiter_shares(smoke));
  soaks.axis("bw", gmem_arbiter_bws(smoke));
  soaks.expand(registry, [smoke](const SweepPoint& p) {
    const bool saturated = p.str("family") == "soak_sat";
    const u64 share = p.u("share");
    const u64 bw = p.u("bw");
    Scenario s;
    s.name = saturated ? gmem_soak_sat_name(share, bw)
                       : gmem_soak_fair_name(share, bw);
    s.description = saturated
        ? "scalar-saturated channel vs always-hungry bulk claimant"
        : "scalar stream at 90 % of its guaranteed share (latency probe)";
    s.run = [share, bw, saturated, smoke]() {
      return run_soak_scenario(share, bw, saturated, smoke);
    };
    return s;
  });

  // Real DMA-staged kernels: {kernel} x {share bound} x {bandwidth}.
  SweepGrid kerns;
  kerns.axis("kernel", gmem_arbiter_kernels(smoke));
  kerns.axis("share", gmem_arbiter_shares(smoke));
  kerns.axis("bw", gmem_arbiter_bws(smoke));
  kerns.expand(registry, [smoke](const SweepPoint& p) {
    const std::string kernel = p.str("kernel");
    const u64 share = p.u("share");
    const u64 bw = p.u("bw");
    Scenario s;
    s.name = gmem_kernel_name(kernel, share, bw);
    s.description =
        "DMA-staged " + kernel + " with the share knob threaded through";
    s.run = [kernel, share, bw, smoke]() {
      return run_kernel_scenario(kernel, share, bw, smoke);
    };
    return s;
  });
}

}  // namespace mp3d::exp
