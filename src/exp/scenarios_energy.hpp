// SPDX-License-Identifier: Apache-2.0
// Simulation-driven Figure 8/9 scenario definitions: one scenario per
// paper SPM capacity point, each running the paper's representative
// workload (the tiled matmul) scaled to its capacity on the cycle-accurate
// simulator and costing the measured event counters under both the 2D and
// 3D operating points through src/power/.
//
// Workload scaling: the paper fills each capacity with the largest tile
// (t = 256/384/544/800 for 1/2/4/8 MiB). Simulating those tiles on the
// 256-core cluster is far too slow, so each scenario uses the paper tile
// scaled down 4x and rounded to the simulator's tile granularity
// (t % 32 == 0): t = 64/96/128/192, i.e. every capacity runs tiles
// proportional to its SPM — the same relative working sets as the paper —
// with m = 2t (two k-chunks, the double-buffer overlap window).
//
// The simulation-derived 3D-over-2D gains are cross-checked against the
// analytical CoExplorer curves at every capacity; the measured error is
// ~1 pp (see bench/fig8_energy), gated at the documented
// core::kEnergyCrossCheckTolerance (5 pp).
#pragma once

#include "common/units.hpp"
#include "exp/scenario.hpp"

namespace mp3d::exp {

/// The four paper capacity points, 1/2/4/8 MiB.
std::vector<u64> paper_capacities();

/// Scenario name for a capacity point, e.g. "cap=4MiB".
std::string energy_scenario_name(u64 capacity);

/// The scaled matmul tile dimension simulated at `capacity`.
u32 scaled_matmul_tile(u64 capacity, bool smoke);

/// Which figure's result rows the scenario should emit; the metrics are
/// identical either way (fig8 and fig9 are two views of the same sweep).
enum class EnergyFigure { kFig8Energy, kFig9Edp };

/// Build the scenario for one capacity point. Metrics set by the run:
///   t, m, macs, cycles,
///   freq_2d_ghz / freq_3d_ghz, runtime_us_2d / runtime_us_3d,
///   cluster_uj_2d / cluster_uj_3d, total_uj_2d / total_uj_3d,
///   edp_cluster_2d / edp_cluster_3d           [nJ*us, on-die]
///   gain_eff_3d2d_sim / _model / _paper       [3D-over-2D efficiency]
///   var_edp_3d2d_sim / _model / _paper        [3D-over-2D EDP]
Scenario make_energy_capacity_scenario(u64 capacity, bool smoke, EnergyFigure figure);

/// Register all four capacity points.
void register_energy_scenarios(Registry& registry, bool smoke, EnergyFigure figure);

}  // namespace mp3d::exp
