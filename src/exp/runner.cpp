// SPDX-License-Identifier: Apache-2.0
#include "exp/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/collector.hpp"

namespace mp3d::exp {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

std::optional<double> SweepReport::metric(const std::string& name,
                                          const std::string& key) const {
  const ScenarioResult* r = find(name);
  if (r == nullptr || !r->ok()) {
    return std::nullopt;
  }
  for (const auto& [k, v] : r->output.metrics) {
    if (k == key) {
      return v;
    }
  }
  return std::nullopt;
}

const ScenarioResult* SweepReport::find(const std::string& name) const {
  for (const ScenarioResult& r : results) {
    if (r.name == name) {
      return &r;
    }
  }
  return nullptr;
}

std::vector<Row> SweepReport::rows() const {
  std::vector<Row> out;
  for (const ScenarioResult& r : results) {
    out.insert(out.end(), r.output.rows.begin(), r.output.rows.end());
  }
  return out;
}

std::size_t SweepReport::failures() const {
  std::size_t n = 0;
  for (const ScenarioResult& r : results) {
    n += r.ok() ? 0 : 1;
  }
  return n;
}

std::size_t SweepReport::successes() const {
  return results.size() - failures();
}

u64 SweepReport::total_sim_cycles() const {
  u64 total = 0;
  for (const ScenarioResult& r : results) {
    if (r.ok()) {
      total += r.output.sim_cycles;
    }
  }
  return total;
}

double ScenarioResult::mcycles_per_sec() const {
  const double wall = perf_wall_ms();
  if (output.sim_cycles == 0 || !(wall > 0.0)) {
    return 0.0;
  }
  return static_cast<double>(output.sim_cycles) / (wall * 1e3);
}

u32 default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<u32>(hw);
}

SweepReport run_sweep(const std::vector<Scenario>& scenarios,
                      const RunnerOptions& options) {
  SweepReport report;
  report.jobs = options.jobs < 1 ? 1 : options.jobs;
  report.results.resize(scenarios.size());
  const auto sweep_start = Clock::now();

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= scenarios.size()) {
        return;
      }
      const Scenario& scenario = scenarios[i];
      ScenarioResult& result = report.results[i];
      result.name = scenario.name;
      result.description = scenario.description;
      const auto start = Clock::now();
      if (obs::global_request_active()) {
        // Label this thread's telemetry deposits with the scenario name.
        obs::set_collect_label(scenario.name);
      }
      try {
        result.output = scenario.run();
      } catch (const std::exception& e) {
        result.error = e.what();
      } catch (...) {
        result.error = "unknown exception";
      }
      result.wall_ms = ms_since(start);
      const std::size_t finished = done.fetch_add(1) + 1;
      if (options.progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        std::fprintf(stderr, "[%zu/%zu] %s (%.0f ms)%s\n", finished,
                     scenarios.size(), scenario.name.c_str(), result.wall_ms,
                     result.ok() ? "" : " FAILED");
      }
    }
  };

  const std::size_t pool =
      std::min<std::size_t>(report.jobs, scenarios.empty() ? 1 : scenarios.size());
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) {
      threads.emplace_back(worker);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  report.wall_ms = ms_since(sweep_start);
  return report;
}

}  // namespace mp3d::exp
