// SPDX-License-Identifier: Apache-2.0
// SweepGrid: the declarative cross product behind every paper sweep
// (kernels x SPM capacity x flow x operating point, ...). Axes expand in
// row-major order — the first axis varies slowest — into independent
// SweepPoints, each of which a factory turns into one self-contained
// Scenario. Expansion order is the registration/reporting order, so sweep
// output is identical no matter how many threads later run the scenarios.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "exp/scenario.hpp"

namespace mp3d::exp {

/// One grid coordinate: the value of every axis, by axis name.
class SweepPoint {
 public:
  SweepPoint(std::vector<std::pair<std::string, std::string>> coords);

  /// Axis value as text; throws std::invalid_argument for an unknown axis.
  const std::string& str(const std::string& axis) const;
  u64 u(const std::string& axis) const;       ///< parsed as unsigned
  double d(const std::string& axis) const;    ///< parsed as double

  /// "axis1=v1/axis2=v2/..." — the default scenario-name suffix.
  std::string label() const;

  const std::vector<std::pair<std::string, std::string>>& coords() const {
    return coords_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> coords_;
};

class SweepGrid {
 public:
  /// Append an axis (varies faster than every axis added before it).
  /// Throws on duplicate axis names or empty value lists.
  SweepGrid& axis(std::string name, std::vector<std::string> values);
  SweepGrid& axis(std::string name, const std::vector<u64>& values);

  /// The full cross product in row-major order.
  std::vector<SweepPoint> points() const;

  /// Expand every point through `factory` and register the scenarios.
  void expand(Registry& registry,
              const std::function<Scenario(const SweepPoint&)>& factory) const;

  std::size_t size() const;

 private:
  std::vector<std::pair<std::string, std::vector<std::string>>> axes_;
};

}  // namespace mp3d::exp
