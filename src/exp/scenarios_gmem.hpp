// SPDX-License-Identifier: Apache-2.0
// Gmem channel-arbiter scenario definitions: the sweep behind
// bench/gmem_arbiter, exercising the bounded-share arbitration of the
// off-chip channel (GmemArbiterConfig) over {share bound} x {kernel} x
// {bandwidth 4..64 B/cycle}.
//
// Three scenario families:
//   - soak_sat:  a synthetic scalar word stream *oversaturating* the
//     channel against an always-hungry bulk claimant, on a standalone
//     GlobalMemory. Measures the bulk share actually granted — 0 under
//     the legacy absolute-priority policy (the starvation bug), >= the
//     configured minimum under the bounded-share arbiter.
//   - soak_fair: the scalar stream offered at 90 % of its *guaranteed*
//     share (the complement of the bulk bound). Measures scalar queueing
//     latency, which must stay bounded: the arbiter may shift bytes to
//     bulk but never collapses the scalar class.
//   - kern:      real DMA-staged kernels (double-buffered matmul, staged
//     AXPY) on a mini cluster with the share knob threaded through
//     ClusterConfig — verifying results at every setting and pinning that
//     a nonzero guarantee does not regress kernel runtime.
#pragma once

#include <memory>

#include "arch/params.hpp"
#include "common/units.hpp"
#include "exp/scenario.hpp"

namespace mp3d::obs {
class Telemetry;
}

namespace mp3d::exp {

/// Synthetic channel soak on a standalone GlobalMemory.
struct GmemSoakParams {
  u32 bytes_per_cycle = 4;
  u32 latency = 4;
  u32 bulk_min_pct = 0;        ///< GmemArbiterConfig::bulk_min_pct
  u32 deficit_cap_cycles = 8;  ///< GmemArbiterConfig::deficit_cap_cycles
  u32 scalar_load_pct = 100;   ///< offered scalar load, % of channel bytes
  bool bulk_active = true;     ///< an always-hungry bulk claimant
  u64 cycles = 20000;
  /// Optional telemetry: windowed counter sampling and/or arbiter event
  /// tracing on the standalone GlobalMemory. When disabled here, an
  /// active obs global request (the suite's --timeline/--trace) applies.
  arch::TelemetryConfig telemetry;
};

struct GmemSoakResult {
  u64 scalar_completed = 0;  ///< scalar responses received
  u64 scalar_bytes = 0;
  u64 bulk_bytes = 0;
  u64 bulk_stall_cycles = 0;
  double scalar_p50 = 0.0;   ///< median enqueue-to-response latency [cycles]
  double scalar_p99 = 0.0;
  double bulk_share = 0.0;   ///< bulk bytes / (cycles x channel rate)
  /// Collected telemetry (null when disabled). Windows carry the gmem
  /// counter deltas plus per-window scalar latency p50/p99 and queue
  /// depth gauges.
  std::shared_ptr<obs::Telemetry> telemetry;
};

/// Run the soak: a deterministic scalar word stream at the configured
/// offered load, stepped cycle-by-cycle against a bulk claimant with
/// unbounded demand (when active) claiming up to the full channel width.
GmemSoakResult run_gmem_soak(const GmemSoakParams& params);

// ---- suite axes (shared by scenario registration and the bench gates) ----
std::vector<u64> gmem_arbiter_shares(bool smoke);   ///< bulk_min_pct values
std::vector<u64> gmem_arbiter_bws(bool smoke);      ///< channel B/cycle
std::vector<std::string> gmem_arbiter_kernels(bool smoke);

/// Scalar offered load (percent of channel) used by the soak families.
inline constexpr u32 kSoakSaturatedLoadPct = 150;
/// soak_fair offers this fraction (percent) of the scalar class's
/// guaranteed share, keeping its queue stable so latency is meaningful.
inline constexpr u32 kSoakFairLoadFraction = 90;
/// Scalar p99 latency bound gated by soak_fair, in cycles on top of the
/// model's fixed gmem latency.
inline constexpr double kSoakScalarP99Slack = 16.0;

std::string gmem_soak_sat_name(u64 share, u64 bw);
std::string gmem_soak_fair_name(u64 share, u64 bw);
std::string gmem_kernel_name(const std::string& kernel, u64 share, u64 bw);

/// Register every scenario of the gmem_arbiter suite.
void register_gmem_arbiter_scenarios(Registry& registry, bool smoke);

}  // namespace mp3d::exp
