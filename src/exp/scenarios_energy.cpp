// SPDX-License-Identifier: Apache-2.0
#include "exp/scenarios_energy.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/table.hpp"
#include "core/coexplore.hpp"
#include "kernels/matmul.hpp"
#include "phys/paper_ref.hpp"
#include "power/report.hpp"

namespace mp3d::exp {

std::vector<u64> paper_capacities() { return {MiB(1), MiB(2), MiB(4), MiB(8)}; }

std::string energy_scenario_name(u64 capacity) {
  return "cap=" + std::to_string(capacity / MiB(1)) + "MiB";
}

u32 scaled_matmul_tile(u64 capacity, bool smoke) {
  // Paper tiles 256/384/544/800 scaled 4x down and rounded to the
  // simulator's granularity (t % 32 == 0, see MatmulParams::validate);
  // smoke halves them again.
  u32 t = 0;
  switch (capacity / MiB(1)) {
    case 1: t = smoke ? 32 : 64; break;
    case 2: t = smoke ? 64 : 96; break;
    case 4: t = smoke ? 64 : 128; break;
    case 8: t = smoke ? 96 : 192; break;
    default:
      MP3D_CHECK(false, "no scaled workload for capacity " << capacity);
  }
  return t;
}

Scenario make_energy_capacity_scenario(u64 capacity, bool smoke, EnergyFigure figure) {
  Scenario scenario;
  scenario.name = energy_scenario_name(capacity);
  const u32 t = scaled_matmul_tile(capacity, smoke);
  scenario.description = "simulated matmul t=" + std::to_string(t) + " m=" +
                         std::to_string(2 * t) + " on the " +
                         std::to_string(capacity / MiB(1)) +
                         " MiB cluster, costed under the 2D and 3D operating points";
  scenario.run = [capacity, t, figure]() {
    arch::ClusterConfig cfg = arch::ClusterConfig::mempool(capacity);
    cfg.gmem_bytes_per_cycle = 16;  // the paper's representative DDR channel
    cfg.validate();

    kernels::MatmulParams mp;
    mp.m = 2 * t;  // two k-chunks per output tile
    mp.t = t;
    arch::Cluster cluster(cfg);
    const kernels::Kernel kernel = kernels::build_matmul(cfg, mp);
    const arch::RunResult result = kernels::run_kernel(cluster, kernel,
                                                       2'000'000'000, true);

    const power::OperatingPoint op_2d =
        power::make_operating_point(cfg, phys::Flow::k2D);
    const power::OperatingPoint op_3d =
        power::make_operating_point(cfg, phys::Flow::k3D);
    const power::EnergyReport r_2d = power::account(result, op_2d);
    const power::EnergyReport r_3d = power::account(result, op_3d);

    // Analytical references at the same capacity: CoExplorer's Figure 8/9
    // curves plus the paper's own annotations.
    const core::CoExplorer explorer;
    const double model_eff = explorer.gain_3d_over_2d_eff(capacity);
    const double model_edp = explorer.var_3d_over_2d_edp(capacity);
    double paper_eff = 0.0;
    double paper_edp = 0.0;
    for (const auto& ref : phys::paper::figures789()) {
      if (ref.capacity == capacity) {
        paper_eff = ref.eff_gain_3d_over_2d;
        paper_edp = ref.edp_var_3d_over_2d;
      }
    }

    const double sim_eff = r_2d.cluster_nj() / r_3d.cluster_nj() - 1.0;
    const double sim_edp =
        r_3d.cluster_edp_nj_us() / r_2d.cluster_edp_nj_us() - 1.0;
    const double macs =
        static_cast<double>(mp.m) * static_cast<double>(mp.m) * mp.m;

    ScenarioOutput out;
    out.sim(result.cycles, result.total_instret());
    out.metric("capacity_mib", static_cast<double>(capacity / MiB(1)))
        .metric("t", t)
        .metric("m", mp.m)
        .metric("macs", macs)
        .metric("cycles", static_cast<double>(result.cycles))
        .metric("freq_2d_ghz", r_2d.freq_ghz)
        .metric("freq_3d_ghz", r_3d.freq_ghz)
        .metric("runtime_us_2d", r_2d.runtime_ns * 1e-3)
        .metric("runtime_us_3d", r_3d.runtime_ns * 1e-3)
        .metric("cluster_uj_2d", r_2d.cluster_nj() * 1e-3)
        .metric("cluster_uj_3d", r_3d.cluster_nj() * 1e-3)
        .metric("total_uj_2d", r_2d.total_nj() * 1e-3)
        .metric("total_uj_3d", r_3d.total_nj() * 1e-3)
        .metric("edp_cluster_2d", r_2d.cluster_edp_nj_us())
        .metric("edp_cluster_3d", r_3d.cluster_edp_nj_us())
        .metric("gain_eff_3d2d_sim", sim_eff)
        .metric("gain_eff_3d2d_model", model_eff)
        .metric("gain_eff_3d2d_paper", paper_eff)
        .metric("var_edp_3d2d_sim", sim_edp)
        .metric("var_edp_3d2d_model", model_edp)
        .metric("var_edp_3d2d_paper", paper_edp);

    const u64 cap_mib = capacity / MiB(1);
    for (const power::EnergyReport* r : {&r_2d, &r_3d}) {
      const bool is_3d = r == &r_3d;
      Row row;
      row.cell("capacity_mib", cap_mib)
          .cell("flow", is_3d ? "3D" : "2D")
          .cell("t", static_cast<u64>(t))
          .cell("m", static_cast<u64>(mp.m))
          .cell("cycles", result.cycles)
          .cell("freq_ghz", r->freq_ghz, 4)
          .cell("runtime_us", r->runtime_ns * 1e-3, 4);
      if (figure == EnergyFigure::kFig8Energy) {
        row.cell("cluster_uj", r->cluster_nj() * 1e-3, 4)
            .cell("total_uj", r->total_nj() * 1e-3, 4)
            .cell("power_mw", r->avg_power_mw(), 1);
        if (is_3d) {
          row.cell("gain_3d_over_2d_sim", sim_eff, 4)
              .cell("gain_3d_over_2d_model", model_eff, 4)
              .cell("gain_3d_over_2d_paper", paper_eff, 4)
              .cell("cross_check_err_pp", std::abs(sim_eff - model_eff) * 100, 2);
        }
      } else {
        row.cell("cluster_uj", r->cluster_nj() * 1e-3, 4)
            .cell("edp_cluster_nj_us", r->cluster_edp_nj_us(), 4);
        if (is_3d) {
          row.cell("var_3d_over_2d_sim", sim_edp, 4)
              .cell("var_3d_over_2d_model", model_edp, 4)
              .cell("var_3d_over_2d_paper", paper_edp, 4)
              .cell("cross_check_err_pp", std::abs(sim_edp - model_edp) * 100, 2);
        }
      }
      out.row(std::move(row));
    }
    return out;
  };
  return scenario;
}

void register_energy_scenarios(Registry& registry, bool smoke, EnergyFigure figure) {
  for (const u64 capacity : paper_capacities()) {
    registry.add(make_energy_capacity_scenario(capacity, smoke, figure));
  }
}

}  // namespace mp3d::exp
