// SPDX-License-Identifier: Apache-2.0
#include "exp/row.hpp"

#include <cstdio>

#include "common/table.hpp"

namespace mp3d::exp {

Row& Row::cell(std::string column, std::string value) {
  cells_.emplace_back(std::move(column), std::move(value));
  return *this;
}

Row& Row::cell(std::string column, u64 value) {
  return cell(std::move(column), std::to_string(value));
}

Row& Row::cell(std::string column, double value, int digits) {
  return cell(std::move(column), fmt_norm(value, digits));
}

const std::string& Row::get(const std::string& column) const {
  static const std::string kEmpty;
  for (const auto& [col, value] : cells_) {
    if (col == column) {
      return value;
    }
  }
  return kEmpty;
}

std::vector<std::string> union_columns(const std::vector<Row>& rows) {
  std::vector<std::string> columns;
  for (const Row& row : rows) {
    for (const auto& [col, value] : row.cells()) {
      (void)value;
      bool seen = false;
      for (const std::string& c : columns) {
        if (c == col) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        columns.push_back(col);
      }
    }
  }
  return columns;
}

namespace {

void csv_cell(std::string& out, const std::string& c) {
  if (c.find_first_of(",\"\n") == std::string::npos) {
    out += c;
    return;
  }
  out += '"';
  for (const char ch : c) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
}

}  // namespace

std::string rows_to_csv(const std::vector<Row>& rows) {
  const std::vector<std::string> columns = union_columns(rows);
  std::string out;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    csv_cell(out, columns[i]);
  }
  out += '\n';
  for (const Row& row : rows) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (i != 0) {
        out += ',';
      }
      csv_cell(out, row.get(columns[i]));
    }
    out += '\n';
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace mp3d::exp
