// SPDX-License-Identifier: Apache-2.0
#include "exp/sweep.hpp"

#include <cstdlib>

#include "common/assert.hpp"

namespace mp3d::exp {

SweepPoint::SweepPoint(std::vector<std::pair<std::string, std::string>> coords)
    : coords_(std::move(coords)) {}

const std::string& SweepPoint::str(const std::string& axis) const {
  for (const auto& [name, value] : coords_) {
    if (name == axis) {
      return value;
    }
  }
  MP3D_CHECK(false, "unknown sweep axis: " << axis);
  static const std::string kEmpty;
  return kEmpty;  // unreachable
}

u64 SweepPoint::u(const std::string& axis) const {
  const std::string& s = str(axis);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  MP3D_CHECK(end != s.c_str() && *end == '\0',
             "axis " << axis << " value '" << s << "' is not an unsigned integer");
  return static_cast<u64>(v);
}

double SweepPoint::d(const std::string& axis) const {
  const std::string& s = str(axis);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  MP3D_CHECK(end != s.c_str() && *end == '\0',
             "axis " << axis << " value '" << s << "' is not a number");
  return v;
}

std::string SweepPoint::label() const {
  std::string out;
  for (const auto& [name, value] : coords_) {
    if (!out.empty()) {
      out += '/';
    }
    out += name + "=" + value;
  }
  return out;
}

SweepGrid& SweepGrid::axis(std::string name, std::vector<std::string> values) {
  MP3D_CHECK(!values.empty(), "sweep axis " << name << " has no values");
  for (const auto& [existing, vals] : axes_) {
    (void)vals;
    MP3D_CHECK(existing != name, "duplicate sweep axis: " << name);
  }
  axes_.emplace_back(std::move(name), std::move(values));
  return *this;
}

SweepGrid& SweepGrid::axis(std::string name, const std::vector<u64>& values) {
  std::vector<std::string> strings;
  strings.reserve(values.size());
  for (const u64 v : values) {
    strings.push_back(std::to_string(v));
  }
  return axis(std::move(name), std::move(strings));
}

std::size_t SweepGrid::size() const {
  std::size_t n = axes_.empty() ? 0 : 1;
  for (const auto& [name, values] : axes_) {
    (void)name;
    n *= values.size();
  }
  return n;
}

std::vector<SweepPoint> SweepGrid::points() const {
  std::vector<SweepPoint> out;
  const std::size_t total = size();
  out.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    // Row-major: the first axis varies slowest.
    std::vector<std::pair<std::string, std::string>> coords(axes_.size());
    std::size_t rest = i;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      const auto& [name, values] = axes_[a];
      coords[a] = {name, values[rest % values.size()]};
      rest /= values.size();
    }
    out.emplace_back(std::move(coords));
  }
  return out;
}

void SweepGrid::expand(Registry& registry,
                       const std::function<Scenario(const SweepPoint&)>& factory) const {
  for (const SweepPoint& point : points()) {
    registry.add(factory(point));
  }
}

}  // namespace mp3d::exp
