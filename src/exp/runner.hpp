// SPDX-License-Identifier: Apache-2.0
// SweepRunner: farms independent scenarios out to a std::thread pool.
// Simulations share nothing, so a sweep scales ~linearly with host cores.
// Results land in a pre-sized slot per scenario, so reporting order — and
// therefore every CSV byte — is identical regardless of the thread count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exp/scenario.hpp"

namespace mp3d::exp {

struct ScenarioResult {
  std::string name;
  std::string description;
  ScenarioOutput output;
  std::string error;   ///< nonempty when run() threw; output is then empty
  double wall_ms = 0;  ///< this scenario's own wall clock

  bool ok() const { return error.empty(); }
  /// Wall clock for throughput accounting: the scenario's own min-of-N
  /// override when set, the runner-measured wall otherwise.
  double perf_wall_ms() const {
    return output.perf_wall_ms > 0.0 ? output.perf_wall_ms : wall_ms;
  }
  /// Simulated Mcycles per host second (0 when no sim work was credited).
  double mcycles_per_sec() const;
};

struct SweepReport {
  std::vector<ScenarioResult> results;  ///< registration order
  u32 jobs = 1;
  double wall_ms = 0;  ///< whole-sweep wall clock

  /// Metric `key` of scenario `name`, if that scenario ran and set it.
  std::optional<double> metric(const std::string& name,
                               const std::string& key) const;
  const ScenarioResult* find(const std::string& name) const;

  /// All result rows in scenario order.
  std::vector<Row> rows() const;
  std::size_t failures() const;
  std::size_t successes() const;
  /// Simulated cycles summed over successful scenarios.
  u64 total_sim_cycles() const;
};

struct RunnerOptions {
  u32 jobs = 1;           ///< worker threads (values < 1 are clamped to 1)
  bool progress = false;  ///< print a line to stderr as scenarios finish
};

/// Run all scenarios and collect results in registration order.
SweepReport run_sweep(const std::vector<Scenario>& scenarios,
                      const RunnerOptions& options);

/// Default worker count: the host's hardware concurrency (at least 1).
u32 default_jobs();

}  // namespace mp3d::exp
