// SPDX-License-Identifier: Apache-2.0
// Multi-cluster scaling scenario definitions: the sweep behind
// bench/system_scaling.
//
// Three families over the hierarchical System (src/sys/):
//   - sys/weak/<kernel>/c<N>: weak scaling — N clusters each running one
//     staged copy of the same job (memcpy or DMA-staged matmul), inputs
//     sharded out of the home cluster's gmem shard over the mesh and
//     outputs staged back. Per-cluster work is constant, so the system
//     cycle count would be flat under perfect scaling; the efficiency
//     column (cycles at c1 / cycles at cN) charts how close the mesh +
//     staging overheads let the system get.
//   - sys/speedup/memcpy/c<N>: fig6-style throughput sweep — a fixed
//     batch of jobs drained by 1..8 clusters under the least-loaded
//     scheduler; the speedup column is the batch-makespan ratio vs c1.
//   - sys/compat/single_cluster: the back-compat witness — the same
//     kernel through a bare Cluster and a one-cluster System must produce
//     bit-identical cycle counts, counters and memory.
//
// Every scaling scenario runs its system twice, fast-forward on and off,
// and reports whether the two runs were bit-identical (cycles, the full
// counter map, per-job records) — the system-level extension of the
// sim_speed on/off contract.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "exp/scenario.hpp"

namespace mp3d::exp {

/// Cluster counts swept by the weak-scaling and speedup families
/// ({1, 2, 4, 8}; {1, 2} under --smoke).
std::vector<u32> system_cluster_counts(bool smoke);

/// Weak-scaling kernels, in registration order: {"memcpy", "matmul"}.
std::vector<std::string> system_weak_kernels();

/// Jobs in the fixed speedup batch (8; 4 under --smoke).
u32 system_speedup_jobs(bool smoke);

std::string system_weak_name(const std::string& kernel, u32 clusters);
std::string system_speedup_name(u32 clusters);
std::string system_compat_name();

/// Register every scenario of the system_scaling suite.
void register_system_scenarios(Registry& registry, bool smoke);

}  // namespace mp3d::exp
