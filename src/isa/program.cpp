// SPDX-License-Identifier: Apache-2.0
#include "isa/program.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace mp3d::isa {

void Program::add_segment(Segment segment) {
  MP3D_CHECK(segment.base % 4 == 0, "segment base must be word aligned");
  segments_.push_back(std::move(segment));
}

void Program::define_symbol(const std::string& name, u32 value) {
  symbols_[name] = value;
}

std::optional<u32> Program::symbol(const std::string& name) const {
  const auto it = symbols_.find(name);
  if (it == symbols_.end()) {
    return std::nullopt;
  }
  return it->second;
}

u32 Program::symbol_or_throw(const std::string& name) const {
  const auto v = symbol(name);
  if (!v) {
    throw std::out_of_range("mp3d: undefined program symbol: " + name);
  }
  return *v;
}

std::optional<u32> Program::read_word(u32 addr) const {
  for (const Segment& seg : segments_) {
    if (addr >= seg.base && addr + 4 <= seg.end()) {
      return seg.words[(addr - seg.base) / 4];
    }
  }
  return std::nullopt;
}

u64 Program::total_bytes() const {
  u64 total = 0;
  for (const Segment& seg : segments_) {
    total += seg.words.size() * 4;
  }
  return total;
}

}  // namespace mp3d::isa
