// SPDX-License-Identifier: Apache-2.0
#include "isa/disasm.hpp"

#include "common/strings.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"

namespace mp3d::isa {
namespace {

std::string reg(u8 r) { return register_abi_name(r); }

}  // namespace

std::string disassemble(const Instr& in, u32 pc) {
  const char* name = op_name(in.op);
  switch (in.op) {
    case Op::kInvalid:
      return "<invalid>";
    case Op::kLui:
    case Op::kAuipc:
      return strfmt("%s %s, 0x%x", name, reg(in.rd).c_str(),
                    static_cast<u32>(in.imm) >> 12);
    case Op::kJal:
      return strfmt("%s %s, 0x%x", name, reg(in.rd).c_str(),
                    pc + static_cast<u32>(in.imm));
    case Op::kJalr:
      return strfmt("%s %s, %d(%s)", name, reg(in.rd).c_str(), in.imm,
                    reg(in.rs1).c_str());
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return strfmt("%s %s, %s, 0x%x", name, reg(in.rs1).c_str(), reg(in.rs2).c_str(),
                    pc + static_cast<u32>(in.imm));
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
      return strfmt("%s %s, %d(%s)", name, reg(in.rd).c_str(), in.imm,
                    reg(in.rs1).c_str());
    case Op::kPLwPost:
      return strfmt("%s %s, %d(%s!)", name, reg(in.rd).c_str(), in.imm,
                    reg(in.rs1).c_str());
    case Op::kPLwRPost:
      return strfmt("%s %s, %s(%s!)", name, reg(in.rd).c_str(), reg(in.rs2).c_str(),
                    reg(in.rs1).c_str());
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
      return strfmt("%s %s, %d(%s)", name, reg(in.rs2).c_str(), in.imm,
                    reg(in.rs1).c_str());
    case Op::kPSwPost:
      return strfmt("%s %s, %d(%s!)", name, reg(in.rs2).c_str(), in.imm,
                    reg(in.rs1).c_str());
    case Op::kAddi:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kXori:
    case Op::kOri:
    case Op::kAndi:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai:
      return strfmt("%s %s, %s, %d", name, reg(in.rd).c_str(), reg(in.rs1).c_str(),
                    in.imm);
    case Op::kFence:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kWfi:
      return name;
    case Op::kLrW:
      return strfmt("%s %s, (%s)", name, reg(in.rd).c_str(), reg(in.rs1).c_str());
    case Op::kScW:
      return strfmt("%s %s, %s, (%s)", name, reg(in.rd).c_str(), reg(in.rs2).c_str(),
                    reg(in.rs1).c_str());
    case Op::kAmoSwapW:
    case Op::kAmoAddW:
    case Op::kAmoXorW:
    case Op::kAmoAndW:
    case Op::kAmoOrW:
    case Op::kAmoMinW:
    case Op::kAmoMaxW:
    case Op::kAmoMinuW:
    case Op::kAmoMaxuW:
      return strfmt("%s %s, %s, (%s)", name, reg(in.rd).c_str(), reg(in.rs2).c_str(),
                    reg(in.rs1).c_str());
    case Op::kCsrrw:
    case Op::kCsrrs:
    case Op::kCsrrc:
      return strfmt("%s %s, 0x%x, %s", name, reg(in.rd).c_str(), in.csr,
                    reg(in.rs1).c_str());
    case Op::kCsrrwi:
    case Op::kCsrrsi:
    case Op::kCsrrci:
      return strfmt("%s %s, 0x%x, %d", name, reg(in.rd).c_str(), in.csr, in.imm);
    case Op::kPAbs:
      return strfmt("%s %s, %s", name, reg(in.rd).c_str(), reg(in.rs1).c_str());
    default:
      return strfmt("%s %s, %s, %s", name, reg(in.rd).c_str(), reg(in.rs1).c_str(),
                    reg(in.rs2).c_str());
  }
}

std::string disassemble_word(u32 word, u32 pc) { return disassemble(decode(word), pc); }

}  // namespace mp3d::isa
