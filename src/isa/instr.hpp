// SPDX-License-Identifier: Apache-2.0
// Semantic instruction representation for the RV32IMA + Zicsr + Xpulpimg
// subset implemented by the MemPool cores (Snitch RV32IMAXpulpimg).
//
// Standard instructions use standard RISC-V encodings (see encoding.cpp).
// The Xpulpimg subset (multiply-accumulate, post-incrementing memory
// accesses, min/max/abs) uses the custom-0/custom-1 opcode spaces with an
// encoding defined by this library; we do not claim binary compatibility
// with the PULP toolchain, only semantic equivalence of the operations the
// paper relies on.
#pragma once

#include <string>

#include "common/units.hpp"

namespace mp3d::isa {

enum class Op : u8 {
  kInvalid = 0,
  // RV32I
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  // RV32M
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // RV32A (word)
  kLrW, kScW, kAmoSwapW, kAmoAddW, kAmoXorW, kAmoAndW, kAmoOrW,
  kAmoMinW, kAmoMaxW, kAmoMinuW, kAmoMaxuW,
  // Zicsr + wfi
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci, kWfi,
  // Xpulpimg subset
  kPMac,     ///< rd += rs1 * rs2
  kPMsu,     ///< rd -= rs1 * rs2
  kPMax, kPMin, kPAbs,
  kPLwPost,  ///< rd = mem32[rs1]; rs1 += imm
  kPLwRPost, ///< rd = mem32[rs1]; rs1 += rs2
  kPSwPost,  ///< mem32[rs1] = rs2; rs1 += imm
  kCount,
};

const char* op_name(Op op);

struct Instr {
  Op op = Op::kInvalid;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i32 imm = 0;   ///< sign-extended immediate (branch/jump: byte offset)
  u16 csr = 0;   ///< CSR address for Zicsr ops

  bool valid() const { return op != Op::kInvalid; }
};

// Classification helpers used by the core's issue logic.
bool is_load(Op op);
bool is_store(Op op);
bool is_amo(Op op);        ///< includes lr/sc
bool is_mem(Op op);        ///< any memory access
bool is_branch(Op op);     ///< conditional branches
bool is_jump(Op op);       ///< jal/jalr
bool writes_rd(const Instr& instr);
bool reads_rs1(const Instr& instr);
bool reads_rs2(const Instr& instr);
/// Post-incrementing accesses also *write* rs1.
bool writes_rs1(const Instr& instr);
/// p.mac/p.msu read rd as a third source (accumulator).
bool reads_rd(const Instr& instr);

/// Well-known CSR numbers.
inline constexpr u16 kCsrMHartId = 0xF14;
inline constexpr u16 kCsrMCycle = 0xB00;
inline constexpr u16 kCsrMInstret = 0xB02;

}  // namespace mp3d::isa
