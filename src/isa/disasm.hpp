// SPDX-License-Identifier: Apache-2.0
// Instruction-to-text rendering, mainly for tracing and assembler
// round-trip tests.
#pragma once

#include <string>

#include "isa/instr.hpp"

namespace mp3d::isa {

/// Render an instruction. `pc` lets branch/jump targets print absolutely.
std::string disassemble(const Instr& instr, u32 pc = 0);

/// Decode and render a raw word.
std::string disassemble_word(u32 word, u32 pc = 0);

}  // namespace mp3d::isa
