// SPDX-License-Identifier: Apache-2.0
#include "isa/encoding.hpp"

#include "common/assert.hpp"

namespace mp3d::isa {
namespace {

// Base opcodes (bits [6:0]).
constexpr u32 kOpcLui = 0b0110111;
constexpr u32 kOpcAuipc = 0b0010111;
constexpr u32 kOpcJal = 0b1101111;
constexpr u32 kOpcJalr = 0b1100111;
constexpr u32 kOpcBranch = 0b1100011;
constexpr u32 kOpcLoad = 0b0000011;
constexpr u32 kOpcStore = 0b0100011;
constexpr u32 kOpcOpImm = 0b0010011;
constexpr u32 kOpcOp = 0b0110011;
constexpr u32 kOpcMiscMem = 0b0001111;
constexpr u32 kOpcSystem = 0b1110011;
constexpr u32 kOpcAmo = 0b0101111;
constexpr u32 kOpcCustom0 = 0b0001011;
constexpr u32 kOpcCustom1 = 0b0101011;

constexpr u32 bits(u32 word, u32 hi, u32 lo) {
  return (word >> lo) & ((1U << (hi - lo + 1)) - 1U);
}

i32 sext(u32 value, u32 width) {
  const u32 shift = 32 - width;
  return static_cast<i32>(value << shift) >> shift;
}

i32 imm_i(u32 w) { return sext(bits(w, 31, 20), 12); }
i32 imm_s(u32 w) { return sext((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12); }
i32 imm_b(u32 w) {
  const u32 v = (bits(w, 31, 31) << 12) | (bits(w, 7, 7) << 11) |
                (bits(w, 30, 25) << 5) | (bits(w, 11, 8) << 1);
  return sext(v, 13);
}
i32 imm_u(u32 w) { return static_cast<i32>(w & 0xFFFFF000U); }
i32 imm_j(u32 w) {
  const u32 v = (bits(w, 31, 31) << 20) | (bits(w, 19, 12) << 12) |
                (bits(w, 20, 20) << 11) | (bits(w, 30, 21) << 1);
  return sext(v, 21);
}

Instr make(Op op, u8 rd, u8 rs1, u8 rs2, i32 imm, u16 csr = 0) {
  Instr out;
  out.op = op;
  out.rd = rd;
  out.rs1 = rs1;
  out.rs2 = rs2;
  out.imm = imm;
  out.csr = csr;
  return out;
}

Instr decode_op(u32 w, u8 rd, u8 rs1, u8 rs2) {
  const u32 f3 = bits(w, 14, 12);
  const u32 f7 = bits(w, 31, 25);
  if (f7 == 0b0000000) {
    switch (f3) {
      case 0: return make(Op::kAdd, rd, rs1, rs2, 0);
      case 1: return make(Op::kSll, rd, rs1, rs2, 0);
      case 2: return make(Op::kSlt, rd, rs1, rs2, 0);
      case 3: return make(Op::kSltu, rd, rs1, rs2, 0);
      case 4: return make(Op::kXor, rd, rs1, rs2, 0);
      case 5: return make(Op::kSrl, rd, rs1, rs2, 0);
      case 6: return make(Op::kOr, rd, rs1, rs2, 0);
      case 7: return make(Op::kAnd, rd, rs1, rs2, 0);
      default: break;
    }
  } else if (f7 == 0b0100000) {
    switch (f3) {
      case 0: return make(Op::kSub, rd, rs1, rs2, 0);
      case 5: return make(Op::kSra, rd, rs1, rs2, 0);
      default: break;
    }
  } else if (f7 == 0b0000001) {  // M extension
    switch (f3) {
      case 0: return make(Op::kMul, rd, rs1, rs2, 0);
      case 1: return make(Op::kMulh, rd, rs1, rs2, 0);
      case 2: return make(Op::kMulhsu, rd, rs1, rs2, 0);
      case 3: return make(Op::kMulhu, rd, rs1, rs2, 0);
      case 4: return make(Op::kDiv, rd, rs1, rs2, 0);
      case 5: return make(Op::kDivu, rd, rs1, rs2, 0);
      case 6: return make(Op::kRem, rd, rs1, rs2, 0);
      case 7: return make(Op::kRemu, rd, rs1, rs2, 0);
      default: break;
    }
  } else if (f7 == 0b0100001) {  // Xpulpimg mac/msu
    switch (f3) {
      case 0: return make(Op::kPMac, rd, rs1, rs2, 0);
      case 1: return make(Op::kPMsu, rd, rs1, rs2, 0);
      default: break;
    }
  } else if (f7 == 0b0100010) {  // Xpulpimg min/max/abs
    switch (f3) {
      case 0: return make(Op::kPMax, rd, rs1, rs2, 0);
      case 1: return make(Op::kPMin, rd, rs1, rs2, 0);
      case 2: return make(Op::kPAbs, rd, rs1, 0, 0);
      default: break;
    }
  }
  return {};
}

Instr decode_amo(u32 w, u8 rd, u8 rs1, u8 rs2) {
  if (bits(w, 14, 12) != 0b010) {  // only .w
    return {};
  }
  const u32 f5 = bits(w, 31, 27);
  switch (f5) {
    case 0b00010: return rs2 == 0 ? make(Op::kLrW, rd, rs1, 0, 0) : Instr{};
    case 0b00011: return make(Op::kScW, rd, rs1, rs2, 0);
    case 0b00001: return make(Op::kAmoSwapW, rd, rs1, rs2, 0);
    case 0b00000: return make(Op::kAmoAddW, rd, rs1, rs2, 0);
    case 0b00100: return make(Op::kAmoXorW, rd, rs1, rs2, 0);
    case 0b01100: return make(Op::kAmoAndW, rd, rs1, rs2, 0);
    case 0b01000: return make(Op::kAmoOrW, rd, rs1, rs2, 0);
    case 0b10000: return make(Op::kAmoMinW, rd, rs1, rs2, 0);
    case 0b10100: return make(Op::kAmoMaxW, rd, rs1, rs2, 0);
    case 0b11000: return make(Op::kAmoMinuW, rd, rs1, rs2, 0);
    case 0b11100: return make(Op::kAmoMaxuW, rd, rs1, rs2, 0);
    default: return {};
  }
}

Instr decode_system(u32 w, u8 rd, u8 rs1) {
  const u32 f3 = bits(w, 14, 12);
  const auto csr = static_cast<u16>(bits(w, 31, 20));
  switch (f3) {
    case 0: {
      if (w == 0x00000073U) {
        return make(Op::kEcall, 0, 0, 0, 0);
      }
      if (w == 0x00100073U) {
        return make(Op::kEbreak, 0, 0, 0, 0);
      }
      if (w == 0x10500073U) {
        return make(Op::kWfi, 0, 0, 0, 0);
      }
      return {};
    }
    case 1: return make(Op::kCsrrw, rd, rs1, 0, 0, csr);
    case 2: return make(Op::kCsrrs, rd, rs1, 0, 0, csr);
    case 3: return make(Op::kCsrrc, rd, rs1, 0, 0, csr);
    case 5: return make(Op::kCsrrwi, rd, 0, 0, static_cast<i32>(rs1), csr);
    case 6: return make(Op::kCsrrsi, rd, 0, 0, static_cast<i32>(rs1), csr);
    case 7: return make(Op::kCsrrci, rd, 0, 0, static_cast<i32>(rs1), csr);
    default: return {};
  }
}

}  // namespace

Instr decode(u32 w) {
  const u32 opc = bits(w, 6, 0);
  const auto rd = static_cast<u8>(bits(w, 11, 7));
  const auto rs1 = static_cast<u8>(bits(w, 19, 15));
  const auto rs2 = static_cast<u8>(bits(w, 24, 20));
  const u32 f3 = bits(w, 14, 12);
  const u32 f7 = bits(w, 31, 25);

  switch (opc) {
    case kOpcLui: return make(Op::kLui, rd, 0, 0, imm_u(w));
    case kOpcAuipc: return make(Op::kAuipc, rd, 0, 0, imm_u(w));
    case kOpcJal: return make(Op::kJal, rd, 0, 0, imm_j(w));
    case kOpcJalr: return f3 == 0 ? make(Op::kJalr, rd, rs1, 0, imm_i(w)) : Instr{};
    case kOpcBranch: {
      switch (f3) {
        case 0: return make(Op::kBeq, 0, rs1, rs2, imm_b(w));
        case 1: return make(Op::kBne, 0, rs1, rs2, imm_b(w));
        case 4: return make(Op::kBlt, 0, rs1, rs2, imm_b(w));
        case 5: return make(Op::kBge, 0, rs1, rs2, imm_b(w));
        case 6: return make(Op::kBltu, 0, rs1, rs2, imm_b(w));
        case 7: return make(Op::kBgeu, 0, rs1, rs2, imm_b(w));
        default: return {};
      }
    }
    case kOpcLoad: {
      switch (f3) {
        case 0: return make(Op::kLb, rd, rs1, 0, imm_i(w));
        case 1: return make(Op::kLh, rd, rs1, 0, imm_i(w));
        case 2: return make(Op::kLw, rd, rs1, 0, imm_i(w));
        case 4: return make(Op::kLbu, rd, rs1, 0, imm_i(w));
        case 5: return make(Op::kLhu, rd, rs1, 0, imm_i(w));
        default: return {};
      }
    }
    case kOpcStore: {
      switch (f3) {
        case 0: return make(Op::kSb, 0, rs1, rs2, imm_s(w));
        case 1: return make(Op::kSh, 0, rs1, rs2, imm_s(w));
        case 2: return make(Op::kSw, 0, rs1, rs2, imm_s(w));
        default: return {};
      }
    }
    case kOpcOpImm: {
      switch (f3) {
        case 0: return make(Op::kAddi, rd, rs1, 0, imm_i(w));
        case 2: return make(Op::kSlti, rd, rs1, 0, imm_i(w));
        case 3: return make(Op::kSltiu, rd, rs1, 0, imm_i(w));
        case 4: return make(Op::kXori, rd, rs1, 0, imm_i(w));
        case 6: return make(Op::kOri, rd, rs1, 0, imm_i(w));
        case 7: return make(Op::kAndi, rd, rs1, 0, imm_i(w));
        case 1:
          return f7 == 0 ? make(Op::kSlli, rd, rs1, 0, static_cast<i32>(rs2)) : Instr{};
        case 5:
          if (f7 == 0b0000000) {
            return make(Op::kSrli, rd, rs1, 0, static_cast<i32>(rs2));
          }
          if (f7 == 0b0100000) {
            return make(Op::kSrai, rd, rs1, 0, static_cast<i32>(rs2));
          }
          return {};
        default: return {};
      }
    }
    case kOpcOp: return decode_op(w, rd, rs1, rs2);
    case kOpcMiscMem: return f3 == 0 ? make(Op::kFence, 0, 0, 0, 0) : Instr{};
    case kOpcSystem: return decode_system(w, rd, rs1);
    case kOpcAmo: return decode_amo(w, rd, rs1, rs2);
    case kOpcCustom0: {
      if (f3 == 0b010) {  // p.lw rd, imm(rs1!)
        return make(Op::kPLwPost, rd, rs1, 0, imm_i(w));
      }
      if (f3 == 0b110 && f7 == 0) {  // p.lw rd, rs2(rs1!)
        return make(Op::kPLwRPost, rd, rs1, rs2, 0);
      }
      return {};
    }
    case kOpcCustom1: {
      if (f3 == 0b010) {  // p.sw rs2, imm(rs1!)
        return make(Op::kPSwPost, 0, rs1, rs2, imm_s(w));
      }
      return {};
    }
    default: return {};
  }
}

namespace {

u32 enc_r(u32 opc, u32 f3, u32 f7, u8 rd, u8 rs1, u8 rs2) {
  return opc | (u32{rd} << 7) | (f3 << 12) | (u32{rs1} << 15) | (u32{rs2} << 20) |
         (f7 << 25);
}

u32 enc_i(u32 opc, u32 f3, u8 rd, u8 rs1, i32 imm) {
  MP3D_ASSERT_MSG(imm >= -2048 && imm <= 2047, "I-immediate out of range: " << imm);
  return opc | (u32{rd} << 7) | (f3 << 12) | (u32{rs1} << 15) |
         (static_cast<u32>(imm & 0xFFF) << 20);
}

u32 enc_s(u32 opc, u32 f3, u8 rs1, u8 rs2, i32 imm) {
  MP3D_ASSERT_MSG(imm >= -2048 && imm <= 2047, "S-immediate out of range: " << imm);
  const u32 u = static_cast<u32>(imm & 0xFFF);
  return opc | ((u & 0x1FU) << 7) | (f3 << 12) | (u32{rs1} << 15) | (u32{rs2} << 20) |
         ((u >> 5) << 25);
}

u32 enc_b(u32 opc, u32 f3, u8 rs1, u8 rs2, i32 imm) {
  MP3D_ASSERT_MSG(imm >= -4096 && imm <= 4095 && (imm & 1) == 0,
                  "B-immediate out of range: " << imm);
  const u32 u = static_cast<u32>(imm);
  return opc | (((u >> 11) & 1U) << 7) | (((u >> 1) & 0xFU) << 8) | (f3 << 12) |
         (u32{rs1} << 15) | (u32{rs2} << 20) | (((u >> 5) & 0x3FU) << 25) |
         (((u >> 12) & 1U) << 31);
}

u32 enc_u(u32 opc, u8 rd, i32 imm) {
  return opc | (u32{rd} << 7) | (static_cast<u32>(imm) & 0xFFFFF000U);
}

u32 enc_j(u32 opc, u8 rd, i32 imm) {
  MP3D_ASSERT_MSG(imm >= -(1 << 20) && imm < (1 << 20) && (imm & 1) == 0,
                  "J-immediate out of range: " << imm);
  const u32 u = static_cast<u32>(imm);
  return opc | (u32{rd} << 7) | (((u >> 12) & 0xFFU) << 12) | (((u >> 11) & 1U) << 20) |
         (((u >> 1) & 0x3FFU) << 21) | (((u >> 20) & 1U) << 31);
}

u32 enc_csr(u32 f3, u8 rd, u32 src, u16 csr) {
  return kOpcSystem | (u32{rd} << 7) | (f3 << 12) | (src << 15) | (u32{csr} << 20);
}

u32 enc_amo(u32 f5, u8 rd, u8 rs1, u8 rs2) {
  return enc_r(kOpcAmo, 0b010, f5 << 2, rd, rs1, rs2);
}

}  // namespace

u32 encode(const Instr& in) {
  switch (in.op) {
    case Op::kLui: return enc_u(kOpcLui, in.rd, in.imm);
    case Op::kAuipc: return enc_u(kOpcAuipc, in.rd, in.imm);
    case Op::kJal: return enc_j(kOpcJal, in.rd, in.imm);
    case Op::kJalr: return enc_i(kOpcJalr, 0, in.rd, in.rs1, in.imm);
    case Op::kBeq: return enc_b(kOpcBranch, 0, in.rs1, in.rs2, in.imm);
    case Op::kBne: return enc_b(kOpcBranch, 1, in.rs1, in.rs2, in.imm);
    case Op::kBlt: return enc_b(kOpcBranch, 4, in.rs1, in.rs2, in.imm);
    case Op::kBge: return enc_b(kOpcBranch, 5, in.rs1, in.rs2, in.imm);
    case Op::kBltu: return enc_b(kOpcBranch, 6, in.rs1, in.rs2, in.imm);
    case Op::kBgeu: return enc_b(kOpcBranch, 7, in.rs1, in.rs2, in.imm);
    case Op::kLb: return enc_i(kOpcLoad, 0, in.rd, in.rs1, in.imm);
    case Op::kLh: return enc_i(kOpcLoad, 1, in.rd, in.rs1, in.imm);
    case Op::kLw: return enc_i(kOpcLoad, 2, in.rd, in.rs1, in.imm);
    case Op::kLbu: return enc_i(kOpcLoad, 4, in.rd, in.rs1, in.imm);
    case Op::kLhu: return enc_i(kOpcLoad, 5, in.rd, in.rs1, in.imm);
    case Op::kSb: return enc_s(kOpcStore, 0, in.rs1, in.rs2, in.imm);
    case Op::kSh: return enc_s(kOpcStore, 1, in.rs1, in.rs2, in.imm);
    case Op::kSw: return enc_s(kOpcStore, 2, in.rs1, in.rs2, in.imm);
    case Op::kAddi: return enc_i(kOpcOpImm, 0, in.rd, in.rs1, in.imm);
    case Op::kSlti: return enc_i(kOpcOpImm, 2, in.rd, in.rs1, in.imm);
    case Op::kSltiu: return enc_i(kOpcOpImm, 3, in.rd, in.rs1, in.imm);
    case Op::kXori: return enc_i(kOpcOpImm, 4, in.rd, in.rs1, in.imm);
    case Op::kOri: return enc_i(kOpcOpImm, 6, in.rd, in.rs1, in.imm);
    case Op::kAndi: return enc_i(kOpcOpImm, 7, in.rd, in.rs1, in.imm);
    case Op::kSlli:
      return enc_r(kOpcOpImm, 1, 0, in.rd, in.rs1, static_cast<u8>(in.imm & 31));
    case Op::kSrli:
      return enc_r(kOpcOpImm, 5, 0, in.rd, in.rs1, static_cast<u8>(in.imm & 31));
    case Op::kSrai:
      return enc_r(kOpcOpImm, 5, 0b0100000, in.rd, in.rs1, static_cast<u8>(in.imm & 31));
    case Op::kAdd: return enc_r(kOpcOp, 0, 0, in.rd, in.rs1, in.rs2);
    case Op::kSub: return enc_r(kOpcOp, 0, 0b0100000, in.rd, in.rs1, in.rs2);
    case Op::kSll: return enc_r(kOpcOp, 1, 0, in.rd, in.rs1, in.rs2);
    case Op::kSlt: return enc_r(kOpcOp, 2, 0, in.rd, in.rs1, in.rs2);
    case Op::kSltu: return enc_r(kOpcOp, 3, 0, in.rd, in.rs1, in.rs2);
    case Op::kXor: return enc_r(kOpcOp, 4, 0, in.rd, in.rs1, in.rs2);
    case Op::kSrl: return enc_r(kOpcOp, 5, 0, in.rd, in.rs1, in.rs2);
    case Op::kSra: return enc_r(kOpcOp, 5, 0b0100000, in.rd, in.rs1, in.rs2);
    case Op::kOr: return enc_r(kOpcOp, 6, 0, in.rd, in.rs1, in.rs2);
    case Op::kAnd: return enc_r(kOpcOp, 7, 0, in.rd, in.rs1, in.rs2);
    case Op::kFence: return 0x0000000FU;
    case Op::kEcall: return 0x00000073U;
    case Op::kEbreak: return 0x00100073U;
    case Op::kWfi: return 0x10500073U;
    case Op::kMul: return enc_r(kOpcOp, 0, 1, in.rd, in.rs1, in.rs2);
    case Op::kMulh: return enc_r(kOpcOp, 1, 1, in.rd, in.rs1, in.rs2);
    case Op::kMulhsu: return enc_r(kOpcOp, 2, 1, in.rd, in.rs1, in.rs2);
    case Op::kMulhu: return enc_r(kOpcOp, 3, 1, in.rd, in.rs1, in.rs2);
    case Op::kDiv: return enc_r(kOpcOp, 4, 1, in.rd, in.rs1, in.rs2);
    case Op::kDivu: return enc_r(kOpcOp, 5, 1, in.rd, in.rs1, in.rs2);
    case Op::kRem: return enc_r(kOpcOp, 6, 1, in.rd, in.rs1, in.rs2);
    case Op::kRemu: return enc_r(kOpcOp, 7, 1, in.rd, in.rs1, in.rs2);
    case Op::kLrW: return enc_amo(0b00010, in.rd, in.rs1, 0);
    case Op::kScW: return enc_amo(0b00011, in.rd, in.rs1, in.rs2);
    case Op::kAmoSwapW: return enc_amo(0b00001, in.rd, in.rs1, in.rs2);
    case Op::kAmoAddW: return enc_amo(0b00000, in.rd, in.rs1, in.rs2);
    case Op::kAmoXorW: return enc_amo(0b00100, in.rd, in.rs1, in.rs2);
    case Op::kAmoAndW: return enc_amo(0b01100, in.rd, in.rs1, in.rs2);
    case Op::kAmoOrW: return enc_amo(0b01000, in.rd, in.rs1, in.rs2);
    case Op::kAmoMinW: return enc_amo(0b10000, in.rd, in.rs1, in.rs2);
    case Op::kAmoMaxW: return enc_amo(0b10100, in.rd, in.rs1, in.rs2);
    case Op::kAmoMinuW: return enc_amo(0b11000, in.rd, in.rs1, in.rs2);
    case Op::kAmoMaxuW: return enc_amo(0b11100, in.rd, in.rs1, in.rs2);
    case Op::kCsrrw: return enc_csr(1, in.rd, in.rs1, in.csr);
    case Op::kCsrrs: return enc_csr(2, in.rd, in.rs1, in.csr);
    case Op::kCsrrc: return enc_csr(3, in.rd, in.rs1, in.csr);
    case Op::kCsrrwi: return enc_csr(5, in.rd, static_cast<u32>(in.imm) & 31U, in.csr);
    case Op::kCsrrsi: return enc_csr(6, in.rd, static_cast<u32>(in.imm) & 31U, in.csr);
    case Op::kCsrrci: return enc_csr(7, in.rd, static_cast<u32>(in.imm) & 31U, in.csr);
    case Op::kPMac: return enc_r(kOpcOp, 0, 0b0100001, in.rd, in.rs1, in.rs2);
    case Op::kPMsu: return enc_r(kOpcOp, 1, 0b0100001, in.rd, in.rs1, in.rs2);
    case Op::kPMax: return enc_r(kOpcOp, 0, 0b0100010, in.rd, in.rs1, in.rs2);
    case Op::kPMin: return enc_r(kOpcOp, 1, 0b0100010, in.rd, in.rs1, in.rs2);
    case Op::kPAbs: return enc_r(kOpcOp, 2, 0b0100010, in.rd, in.rs1, 0);
    case Op::kPLwPost: return enc_i(kOpcCustom0, 0b010, in.rd, in.rs1, in.imm);
    case Op::kPLwRPost: return enc_r(kOpcCustom0, 0b110, 0, in.rd, in.rs1, in.rs2);
    case Op::kPSwPost: return enc_s(kOpcCustom1, 0b010, in.rs1, in.rs2, in.imm);
    case Op::kInvalid:
    case Op::kCount: break;
  }
  MP3D_UNREACHABLE("encode: invalid instruction");
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kInvalid: return "<invalid>";
    case Op::kLui: return "lui";
    case Op::kAuipc: return "auipc";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kLb: return "lb";
    case Op::kLh: return "lh";
    case Op::kLw: return "lw";
    case Op::kLbu: return "lbu";
    case Op::kLhu: return "lhu";
    case Op::kSb: return "sb";
    case Op::kSh: return "sh";
    case Op::kSw: return "sw";
    case Op::kAddi: return "addi";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kXori: return "xori";
    case Op::kOri: return "ori";
    case Op::kAndi: return "andi";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kSll: return "sll";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kXor: return "xor";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kOr: return "or";
    case Op::kAnd: return "and";
    case Op::kFence: return "fence";
    case Op::kEcall: return "ecall";
    case Op::kEbreak: return "ebreak";
    case Op::kMul: return "mul";
    case Op::kMulh: return "mulh";
    case Op::kMulhsu: return "mulhsu";
    case Op::kMulhu: return "mulhu";
    case Op::kDiv: return "div";
    case Op::kDivu: return "divu";
    case Op::kRem: return "rem";
    case Op::kRemu: return "remu";
    case Op::kLrW: return "lr.w";
    case Op::kScW: return "sc.w";
    case Op::kAmoSwapW: return "amoswap.w";
    case Op::kAmoAddW: return "amoadd.w";
    case Op::kAmoXorW: return "amoxor.w";
    case Op::kAmoAndW: return "amoand.w";
    case Op::kAmoOrW: return "amoor.w";
    case Op::kAmoMinW: return "amomin.w";
    case Op::kAmoMaxW: return "amomax.w";
    case Op::kAmoMinuW: return "amominu.w";
    case Op::kAmoMaxuW: return "amomaxu.w";
    case Op::kCsrrw: return "csrrw";
    case Op::kCsrrs: return "csrrs";
    case Op::kCsrrc: return "csrrc";
    case Op::kCsrrwi: return "csrrwi";
    case Op::kCsrrsi: return "csrrsi";
    case Op::kCsrrci: return "csrrci";
    case Op::kWfi: return "wfi";
    case Op::kPMac: return "p.mac";
    case Op::kPMsu: return "p.msu";
    case Op::kPMax: return "p.max";
    case Op::kPMin: return "p.min";
    case Op::kPAbs: return "p.abs";
    case Op::kPLwPost: return "p.lw";
    case Op::kPLwRPost: return "p.lw";
    case Op::kPSwPost: return "p.sw";
    case Op::kCount: break;
  }
  return "<bad>";
}

bool is_load(Op op) {
  switch (op) {
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
    case Op::kPLwPost:
    case Op::kPLwRPost:
      return true;
    default:
      return false;
  }
}

bool is_store(Op op) {
  switch (op) {
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
    case Op::kPSwPost:
      return true;
    default:
      return false;
  }
}

bool is_amo(Op op) {
  switch (op) {
    case Op::kLrW:
    case Op::kScW:
    case Op::kAmoSwapW:
    case Op::kAmoAddW:
    case Op::kAmoXorW:
    case Op::kAmoAndW:
    case Op::kAmoOrW:
    case Op::kAmoMinW:
    case Op::kAmoMaxW:
    case Op::kAmoMinuW:
    case Op::kAmoMaxuW:
      return true;
    default:
      return false;
  }
}

bool is_mem(Op op) { return is_load(op) || is_store(op) || is_amo(op); }

bool is_branch(Op op) {
  switch (op) {
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return true;
    default:
      return false;
  }
}

bool is_jump(Op op) { return op == Op::kJal || op == Op::kJalr; }

bool writes_rd(const Instr& instr) {
  if (instr.rd == 0) {
    return false;
  }
  switch (instr.op) {
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
    case Op::kPSwPost:
    case Op::kFence:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kWfi:
    case Op::kInvalid:
      return false;
    default:
      return true;
  }
}

bool reads_rs1(const Instr& instr) {
  switch (instr.op) {
    case Op::kLui:
    case Op::kAuipc:
    case Op::kJal:
    case Op::kFence:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kWfi:
    case Op::kCsrrwi:
    case Op::kCsrrsi:
    case Op::kCsrrci:
    case Op::kInvalid:
      return false;
    default:
      return true;
  }
}

bool reads_rs2(const Instr& instr) {
  if (is_branch(instr.op)) {
    return true;
  }
  switch (instr.op) {
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
    case Op::kPSwPost:
    case Op::kPLwRPost:
    case Op::kAdd:
    case Op::kSub:
    case Op::kSll:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kXor:
    case Op::kSrl:
    case Op::kSra:
    case Op::kOr:
    case Op::kAnd:
    case Op::kMul:
    case Op::kMulh:
    case Op::kMulhsu:
    case Op::kMulhu:
    case Op::kDiv:
    case Op::kDivu:
    case Op::kRem:
    case Op::kRemu:
    case Op::kScW:
    case Op::kAmoSwapW:
    case Op::kAmoAddW:
    case Op::kAmoXorW:
    case Op::kAmoAndW:
    case Op::kAmoOrW:
    case Op::kAmoMinW:
    case Op::kAmoMaxW:
    case Op::kAmoMinuW:
    case Op::kAmoMaxuW:
    case Op::kPMac:
    case Op::kPMsu:
    case Op::kPMax:
    case Op::kPMin:
      return true;
    default:
      return false;
  }
}

bool writes_rs1(const Instr& instr) {
  switch (instr.op) {
    case Op::kPLwPost:
    case Op::kPLwRPost:
    case Op::kPSwPost:
      return instr.rs1 != 0;
    default:
      return false;
  }
}

bool reads_rd(const Instr& instr) {
  return (instr.op == Op::kPMac || instr.op == Op::kPMsu) && instr.rd != 0;
}

}  // namespace mp3d::isa
