// SPDX-License-Identifier: Apache-2.0
#include "isa/assembler.hpp"

#include <map>
#include <optional>

#include "common/assert.hpp"
#include "common/strings.hpp"
#include "isa/encoding.hpp"

namespace mp3d::isa {
namespace {

const char* const kAbiNames[32] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

std::optional<u16> parse_csr_name(std::string_view name) {
  const std::string n = to_lower(name);
  if (n == "mhartid") return kCsrMHartId;
  if (n == "mcycle") return kCsrMCycle;
  if (n == "minstret") return kCsrMInstret;
  long long v = 0;
  if (parse_int(n, v) && v >= 0 && v <= 0xFFF) {
    return static_cast<u16>(v);
  }
  return std::nullopt;
}

// A statement after pass-1 parsing. `words` is the size in 32-bit words.
struct Statement {
  int line = 0;
  std::string mnemonic;             // lower-case; empty for pure data
  std::vector<std::string> operands;
  u32 addr = 0;
  u32 words = 1;
  bool is_data = false;             // .word/.space payload
  std::vector<std::string> data_exprs;
  u32 space_bytes = 0;              // for .space
};

class Assembler {
 public:
  explicit Assembler(const AsmOptions& options) : options_(options) {}

  Program run(std::string_view source) {
    pass1(source);
    if (errors_.empty()) {
      pass2();
    }
    if (!errors_.empty()) {
      throw AsmError("assembly failed with " + std::to_string(errors_.size()) +
                         " error(s); first: " + errors_.front(),
                     errors_);
    }
    program_.set_entry(entry_);
    return std::move(program_);
  }

 private:
  // ---------------------------------------------------------------- pass 1
  void pass1(std::string_view source) {
    u32 lc = options_.default_base;
    entry_ = lc;
    bool entry_fixed = false;
    int line_no = 0;
    for (const std::string& raw : split(source, '\n')) {
      ++line_no;
      std::string line = strip_comment(raw);
      std::string_view body = trim(line);
      // Labels (possibly several on one line).
      while (true) {
        const std::size_t colon = find_label_colon(body);
        if (colon == std::string_view::npos) {
          break;
        }
        const std::string label{trim(body.substr(0, colon))};
        if (!valid_symbol(label)) {
          error(line_no, "invalid label name '" + label + "'");
        } else {
          define_symbol(line_no, label, lc);
        }
        body = trim(body.substr(colon + 1));
      }
      if (body.empty()) {
        continue;
      }
      // Directive or instruction.
      const std::vector<std::string> fields = split_operands(body);
      const std::string mnem = to_lower(fields.front());
      std::vector<std::string> ops(fields.begin() + 1, fields.end());

      if (mnem == ".text" || mnem == ".data" || mnem == ".org") {
        u32 target = lc;
        if (!ops.empty()) {
          long long v = 0;
          if (!eval_const(ops[0], v)) {
            error(line_no, "directive address must be a constant: " + ops[0]);
            continue;
          }
          target = static_cast<u32>(v);
        } else if (mnem == ".org") {
          error(line_no, ".org requires an address");
          continue;
        }
        if (target % 4 != 0) {
          error(line_no, "location counter must stay word aligned");
          continue;
        }
        lc = target;
        if (mnem == ".text" && !entry_fixed) {
          entry_ = lc;
          entry_fixed = true;
        }
        continue;
      }
      if (mnem == ".equ" || mnem == ".set") {
        if (ops.size() != 2) {
          error(line_no, mnem + " requires name, value");
          continue;
        }
        long long v = 0;
        if (!eval_const(ops[1], v)) {
          error(line_no, mnem + " value must be constant (got '" + ops[1] + "')");
          continue;
        }
        define_symbol(line_no, ops[0], static_cast<u32>(v));
        continue;
      }
      if (mnem == ".global" || mnem == ".globl" || mnem == ".section") {
        continue;  // accepted for compatibility; no effect
      }
      if (mnem == ".align") {
        long long v = 4;
        if (!ops.empty() && (!eval_const(ops[0], v) || v <= 0 || !is_pow2(static_cast<u64>(v)))) {
          error(line_no, ".align requires a power-of-two byte count");
          continue;
        }
        const u32 aligned = static_cast<u32>(round_up(lc, static_cast<u64>(v)));
        if (aligned != lc) {
          Statement st;
          st.line = line_no;
          st.addr = lc;
          st.is_data = true;
          st.space_bytes = aligned - lc;
          st.words = (aligned - lc) / 4;
          statements_.push_back(st);
          lc = aligned;
        }
        continue;
      }
      if (mnem == ".word") {
        Statement st;
        st.line = line_no;
        st.addr = lc;
        st.is_data = true;
        st.data_exprs = ops;
        st.words = static_cast<u32>(ops.size());
        statements_.push_back(st);
        lc += st.words * 4;
        continue;
      }
      if (mnem == ".space" || mnem == ".zero") {
        long long v = 0;
        if (ops.size() != 1 || !eval_const(ops[0], v) || v < 0 || v % 4 != 0) {
          error(line_no, ".space requires a non-negative word-aligned byte count");
          continue;
        }
        Statement st;
        st.line = line_no;
        st.addr = lc;
        st.is_data = true;
        st.space_bytes = static_cast<u32>(v);
        st.words = static_cast<u32>(v / 4);
        statements_.push_back(st);
        lc += st.words * 4;
        continue;
      }
      if (starts_with(mnem, ".")) {
        error(line_no, "unknown directive " + mnem);
        continue;
      }

      Statement st;
      st.line = line_no;
      st.mnemonic = mnem;
      st.operands = std::move(ops);
      st.addr = lc;
      st.words = size_of(st);
      statements_.push_back(st);
      lc += st.words * 4;
    }
  }

  // Number of words a (possibly pseudo) instruction expands to.
  u32 size_of(const Statement& st) {
    if (st.mnemonic == "li") {
      if (st.operands.size() == 2) {
        long long v = 0;
        if (eval_const(st.operands[1], v) && fits_i12(v)) {
          return 1;
        }
      }
      return 2;  // lui+addi
    }
    if (st.mnemonic == "la") {
      return 2;
    }
    return 1;
  }

  // ---------------------------------------------------------------- pass 2
  void pass2() {
    Segment current;
    bool open = false;
    auto flush = [&]() {
      if (open && !current.words.empty()) {
        program_.add_segment(current);
      }
      open = false;
      current = {};
    };
    for (const Statement& st : statements_) {
      if (!open || current.end() != st.addr) {
        flush();
        current.base = st.addr;
        open = true;
      }
      std::vector<u32> words = emit(st);
      // Keep addresses consistent even if emission failed (errors recorded).
      words.resize(st.words, 0);
      for (const u32 w : words) {
        current.words.push_back(w);
      }
    }
    flush();
    for (const auto& [name, value] : symbols_) {
      program_.define_symbol(name, value);
    }
  }

  std::vector<u32> emit(const Statement& st) {
    if (st.is_data) {
      std::vector<u32> out;
      if (!st.data_exprs.empty()) {
        for (const std::string& e : st.data_exprs) {
          long long v = 0;
          if (!eval(e, st.addr, v)) {
            error(st.line, "cannot evaluate expression '" + e + "'");
            v = 0;
          }
          out.push_back(static_cast<u32>(v));
        }
      } else {
        out.assign(st.space_bytes / 4, 0);
      }
      return out;
    }
    return emit_instr(st);
  }

  // ------------------------------------------------------------- encoding
  std::vector<u32> emit_instr(const Statement& st);

  // Helpers shared by emit_instr (defined below the class for readability).
  bool reg_operand(const Statement& st, std::size_t idx, u8& out) {
    if (idx >= st.operands.size()) {
      error(st.line, st.mnemonic + ": missing register operand");
      return false;
    }
    const int r = parse_register(st.operands[idx]);
    if (r < 0) {
      error(st.line, st.mnemonic + ": bad register '" + st.operands[idx] + "'");
      return false;
    }
    out = static_cast<u8>(r);
    return true;
  }

  bool imm_operand(const Statement& st, std::size_t idx, i64 lo, i64 hi, i32& out) {
    if (idx >= st.operands.size()) {
      error(st.line, st.mnemonic + ": missing immediate operand");
      return false;
    }
    long long v = 0;
    if (!eval(st.operands[idx], st.addr, v)) {
      error(st.line, st.mnemonic + ": cannot evaluate '" + st.operands[idx] + "'");
      return false;
    }
    if (v < lo || v > hi) {
      error(st.line, st.mnemonic + ": immediate " + std::to_string(v) + " out of range [" +
                         std::to_string(lo) + ", " + std::to_string(hi) + "]");
      return false;
    }
    out = static_cast<i32>(v);
    return true;
  }

  /// Parse "off(reg)" / "off(reg!)" / "(reg)" / "reg2(reg1!)" memory operand.
  struct MemOperand {
    u8 base = 0;
    bool post_increment = false;
    bool reg_offset = false;
    u8 offset_reg = 0;
    i32 offset = 0;
  };

  bool mem_operand(const Statement& st, std::size_t idx, MemOperand& out) {
    if (idx >= st.operands.size()) {
      error(st.line, st.mnemonic + ": missing memory operand");
      return false;
    }
    std::string_view s = trim(st.operands[idx]);
    const std::size_t open = s.rfind('(');
    if (open == std::string_view::npos || s.back() != ')') {
      error(st.line, st.mnemonic + ": malformed memory operand '" + std::string(s) + "'");
      return false;
    }
    std::string_view inside = s.substr(open + 1, s.size() - open - 2);
    std::string_view prefix = trim(s.substr(0, open));
    out = MemOperand{};
    if (!inside.empty() && inside.back() == '!') {
      out.post_increment = true;
      inside = trim(inside.substr(0, inside.size() - 1));
    }
    const int base = parse_register(inside);
    if (base < 0) {
      error(st.line, st.mnemonic + ": bad base register '" + std::string(inside) + "'");
      return false;
    }
    out.base = static_cast<u8>(base);
    if (prefix.empty()) {
      out.offset = 0;
      return true;
    }
    const int off_reg = parse_register(prefix);
    if (off_reg >= 0) {
      out.reg_offset = true;
      out.offset_reg = static_cast<u8>(off_reg);
      return true;
    }
    long long v = 0;
    if (!eval(prefix, st.addr, v) || v < -2048 || v > 2047) {
      error(st.line, st.mnemonic + ": bad/out-of-range offset '" + std::string(prefix) + "'");
      return false;
    }
    out.offset = static_cast<i32>(v);
    return true;
  }

  bool branch_target(const Statement& st, std::size_t idx, i32& out, i64 range) {
    if (idx >= st.operands.size()) {
      error(st.line, st.mnemonic + ": missing branch target");
      return false;
    }
    long long v = 0;
    if (!eval(st.operands[idx], st.addr, v)) {
      error(st.line, st.mnemonic + ": cannot resolve target '" + st.operands[idx] + "'");
      return false;
    }
    const i64 delta = v - static_cast<i64>(st.addr);
    if (delta < -range || delta >= range || (delta & 1) != 0) {
      error(st.line, st.mnemonic + ": target out of range (delta " + std::to_string(delta) + ")");
      return false;
    }
    out = static_cast<i32>(delta);
    return true;
  }

  bool csr_operand(const Statement& st, std::size_t idx, u16& out) {
    if (idx >= st.operands.size()) {
      error(st.line, st.mnemonic + ": missing CSR operand");
      return false;
    }
    const auto csr = parse_csr_name(st.operands[idx]);
    if (!csr) {
      error(st.line, st.mnemonic + ": unknown CSR '" + st.operands[idx] + "'");
      return false;
    }
    out = *csr;
    return true;
  }

  // --------------------------------------------------------- infrastructure
  static std::string strip_comment(std::string_view line) {
    std::string out;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '#' || line[i] == ';') {
        break;
      }
      if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;
      }
      out += line[i];
    }
    return out;
  }

  /// Find a label-defining ':' (not inside parens).
  static std::size_t find_label_colon(std::string_view s) {
    int depth = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '(') {
        ++depth;
      } else if (s[i] == ')') {
        --depth;
      } else if (s[i] == ':' && depth == 0) {
        // Only treat as label if everything before is one identifier.
        const std::string_view head = trim(s.substr(0, i));
        if (!head.empty() && valid_symbol(std::string(head))) {
          return i;
        }
        return std::string_view::npos;
      } else if (std::isspace(static_cast<unsigned char>(s[i])) != 0) {
        // Mnemonic boundary reached before ':' -> not a label.
        const std::string_view head = trim(s.substr(0, i));
        if (!head.empty() && s.find(':', i) != std::string_view::npos) {
          // e.g. "lw a0, label:" is malformed; let operand parsing complain.
        }
        return std::string_view::npos;
      }
    }
    return std::string_view::npos;
  }

  static bool valid_symbol(const std::string& s) {
    if (s.empty() || (std::isalpha(static_cast<unsigned char>(s[0])) == 0 && s[0] != '_' &&
                      s[0] != '.')) {
      return false;
    }
    for (const char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != '.' &&
          c != '$') {
        return false;
      }
    }
    return true;
  }

  /// Split "a, b, 4(sp)" into operands; first field is the mnemonic.
  static std::vector<std::string> split_operands(std::string_view body) {
    std::vector<std::string> out;
    // Mnemonic = up to first whitespace.
    std::size_t i = 0;
    while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i])) == 0) {
      ++i;
    }
    out.emplace_back(body.substr(0, i));
    std::string_view rest = trim(body.substr(i));
    if (rest.empty()) {
      return out;
    }
    int depth = 0;
    std::size_t start = 0;
    for (std::size_t j = 0; j <= rest.size(); ++j) {
      if (j == rest.size() || (rest[j] == ',' && depth == 0)) {
        out.emplace_back(trim(rest.substr(start, j - start)));
        start = j + 1;
      } else if (rest[j] == '(') {
        ++depth;
      } else if (rest[j] == ')') {
        --depth;
      }
    }
    return out;
  }

  void define_symbol(int line, const std::string& name, u32 value) {
    if (symbols_.count(name) != 0) {
      error(line, "duplicate symbol '" + name + "'");
      return;
    }
    symbols_[name] = value;
  }

  /// Evaluate expression with symbols; `here` is the statement address.
  bool eval(std::string_view expr, u32 here, long long& out) {
    return eval_impl(expr, here, true, out);
  }

  /// Pass-1 evaluation: already-defined symbols (e.g. earlier .equ) are
  /// available; forward references fail (callers fall back conservatively).
  bool eval_const(std::string_view expr, long long& out) {
    return eval_impl(expr, 0, true, out);
  }

  bool eval_impl(std::string_view expr, u32 here, bool allow_symbols, long long& out) {
    expr = trim(expr);
    if (expr.empty()) {
      return false;
    }
    // %hi(...) / %lo(...)
    if (starts_with(expr, "%hi(") && expr.back() == ')') {
      long long inner = 0;
      if (!eval_impl(expr.substr(4, expr.size() - 5), here, allow_symbols, inner)) {
        return false;
      }
      out = ((inner + 0x800) >> 12) & 0xFFFFF;
      return true;
    }
    if (starts_with(expr, "%lo(") && expr.back() == ')') {
      long long inner = 0;
      if (!eval_impl(expr.substr(4, expr.size() - 5), here, allow_symbols, inner)) {
        return false;
      }
      const auto low = static_cast<i32>((static_cast<u32>(inner) << 20U)) >> 20U;
      out = low;
      return true;
    }
    // Sum of terms.
    long long acc = 0;
    int sign = 1;
    std::size_t i = 0;
    bool any = false;
    while (i <= expr.size()) {
      // Find term end: next +/- at depth 0 that is not a leading sign.
      std::size_t start = i;
      if (start < expr.size() && (expr[start] == '+' || expr[start] == '-')) {
        ++start;  // leading sign belongs to term
      }
      std::size_t j = start;
      int depth = 0;
      while (j < expr.size()) {
        const char c = expr[j];
        if (c == '(') {
          ++depth;
        } else if (c == ')') {
          --depth;
        } else if ((c == '+' || c == '-') && depth == 0) {
          break;
        }
        ++j;
      }
      std::string_view term = trim(expr.substr(i, j - i));
      if (term.empty()) {
        return false;
      }
      int term_sign = sign;
      if (term.front() == '+') {
        term.remove_prefix(1);
      } else if (term.front() == '-') {
        term_sign = -term_sign;
        term.remove_prefix(1);
      }
      term = trim(term);
      long long value = 0;
      if (term == ".") {
        value = here;
      } else if (!parse_int(term, value)) {
        if (!allow_symbols) {
          return false;
        }
        const auto it = symbols_.find(std::string(term));
        if (it == symbols_.end()) {
          return false;
        }
        value = it->second;
      }
      acc += term_sign * value;
      any = true;
      if (j >= expr.size()) {
        break;
      }
      sign = expr[j] == '-' ? -1 : 1;
      i = j + 1;
      // Handled sign explicitly; reset for next term.
      if (sign == -1) {
        sign = 1;
        i = j;  // reprocess the '-' as the term's leading sign
      }
    }
    out = acc;
    return any;
  }

  static bool fits_i12(long long v) { return v >= -2048 && v <= 2047; }

  void error(int line, const std::string& msg) {
    errors_.push_back("line " + std::to_string(line) + ": " + msg);
  }

  AsmOptions options_;
  std::vector<Statement> statements_;
  std::map<std::string, u32> symbols_;
  std::vector<std::string> errors_;
  Program program_;
  u32 entry_ = 0;
};

std::vector<u32> Assembler::emit_instr(const Statement& st) {
  const std::string& m = st.mnemonic;
  auto one = [](const Instr& i) { return std::vector<u32>{encode(i)}; };
  Instr in;

  // ---- R-type ALU ops ------------------------------------------------
  static const std::map<std::string, Op> kRType = {
      {"add", Op::kAdd},       {"sub", Op::kSub},   {"sll", Op::kSll},
      {"slt", Op::kSlt},       {"sltu", Op::kSltu}, {"xor", Op::kXor},
      {"srl", Op::kSrl},       {"sra", Op::kSra},   {"or", Op::kOr},
      {"and", Op::kAnd},       {"mul", Op::kMul},   {"mulh", Op::kMulh},
      {"mulhsu", Op::kMulhsu}, {"mulhu", Op::kMulhu}, {"div", Op::kDiv},
      {"divu", Op::kDivu},     {"rem", Op::kRem},   {"remu", Op::kRemu},
      {"p.mac", Op::kPMac},    {"p.msu", Op::kPMsu}, {"p.max", Op::kPMax},
      {"p.min", Op::kPMin}};
  if (const auto it = kRType.find(m); it != kRType.end()) {
    in.op = it->second;
    if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs1) ||
        !reg_operand(st, 2, in.rs2)) {
      return {};
    }
    return one(in);
  }
  if (m == "p.abs") {
    in.op = Op::kPAbs;
    if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs1)) {
      return {};
    }
    return one(in);
  }

  // ---- I-type ALU ops --------------------------------------------------
  static const std::map<std::string, Op> kIType = {
      {"addi", Op::kAddi}, {"slti", Op::kSlti},   {"sltiu", Op::kSltiu},
      {"xori", Op::kXori}, {"ori", Op::kOri},     {"andi", Op::kAndi}};
  if (const auto it = kIType.find(m); it != kIType.end()) {
    in.op = it->second;
    if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs1) ||
        !imm_operand(st, 2, -2048, 2047, in.imm)) {
      return {};
    }
    return one(in);
  }
  if (m == "slli" || m == "srli" || m == "srai") {
    in.op = m == "slli" ? Op::kSlli : (m == "srli" ? Op::kSrli : Op::kSrai);
    if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs1) ||
        !imm_operand(st, 2, 0, 31, in.imm)) {
      return {};
    }
    return one(in);
  }

  // ---- loads / stores ---------------------------------------------------
  static const std::map<std::string, Op> kLoads = {{"lb", Op::kLb},   {"lh", Op::kLh},
                                                   {"lw", Op::kLw},   {"lbu", Op::kLbu},
                                                   {"lhu", Op::kLhu}};
  if (const auto it = kLoads.find(m); it != kLoads.end()) {
    MemOperand mem;
    if (!reg_operand(st, 0, in.rd) || !mem_operand(st, 1, mem)) {
      return {};
    }
    if (mem.post_increment || mem.reg_offset) {
      error(st.line, m + ": post-increment requires the p.lw mnemonic");
      return {};
    }
    in.op = it->second;
    in.rs1 = mem.base;
    in.imm = mem.offset;
    return one(in);
  }
  static const std::map<std::string, Op> kStores = {{"sb", Op::kSb}, {"sh", Op::kSh},
                                                    {"sw", Op::kSw}};
  if (const auto it = kStores.find(m); it != kStores.end()) {
    MemOperand mem;
    u8 src = 0;
    if (!reg_operand(st, 0, src) || !mem_operand(st, 1, mem)) {
      return {};
    }
    if (mem.post_increment || mem.reg_offset) {
      error(st.line, m + ": post-increment requires the p.sw mnemonic");
      return {};
    }
    in.op = it->second;
    in.rs1 = mem.base;
    in.rs2 = src;
    in.imm = mem.offset;
    return one(in);
  }
  if (m == "p.lw") {
    MemOperand mem;
    if (!reg_operand(st, 0, in.rd) || !mem_operand(st, 1, mem)) {
      return {};
    }
    if (!mem.post_increment) {
      error(st.line, "p.lw requires the (reg!) post-increment form");
      return {};
    }
    in.rs1 = mem.base;
    if (mem.reg_offset) {
      in.op = Op::kPLwRPost;
      in.rs2 = mem.offset_reg;
    } else {
      in.op = Op::kPLwPost;
      in.imm = mem.offset;
    }
    return one(in);
  }
  if (m == "p.sw") {
    MemOperand mem;
    u8 src = 0;
    if (!reg_operand(st, 0, src) || !mem_operand(st, 1, mem)) {
      return {};
    }
    if (!mem.post_increment || mem.reg_offset) {
      error(st.line, "p.sw supports only the imm(reg!) form");
      return {};
    }
    in.op = Op::kPSwPost;
    in.rs1 = mem.base;
    in.rs2 = src;
    in.imm = mem.offset;
    return one(in);
  }

  // ---- branches ----------------------------------------------------------
  static const std::map<std::string, Op> kBranches = {
      {"beq", Op::kBeq}, {"bne", Op::kBne},   {"blt", Op::kBlt},
      {"bge", Op::kBge}, {"bltu", Op::kBltu}, {"bgeu", Op::kBgeu}};
  if (const auto it = kBranches.find(m); it != kBranches.end()) {
    in.op = it->second;
    if (!reg_operand(st, 0, in.rs1) || !reg_operand(st, 1, in.rs2) ||
        !branch_target(st, 2, in.imm, 4096)) {
      return {};
    }
    return one(in);
  }
  // Swapped-operand pseudo branches.
  static const std::map<std::string, Op> kSwapped = {
      {"bgt", Op::kBlt}, {"ble", Op::kBge}, {"bgtu", Op::kBltu}, {"bleu", Op::kBgeu}};
  if (const auto it = kSwapped.find(m); it != kSwapped.end()) {
    in.op = it->second;
    if (!reg_operand(st, 0, in.rs2) || !reg_operand(st, 1, in.rs1) ||
        !branch_target(st, 2, in.imm, 4096)) {
      return {};
    }
    return one(in);
  }
  static const std::map<std::string, std::pair<Op, bool>> kZeroBranches = {
      {"beqz", {Op::kBeq, false}}, {"bnez", {Op::kBne, false}},
      {"bltz", {Op::kBlt, false}}, {"bgez", {Op::kBge, false}},
      {"bgtz", {Op::kBlt, true}},  {"blez", {Op::kBge, true}}};
  if (const auto it = kZeroBranches.find(m); it != kZeroBranches.end()) {
    in.op = it->second.first;
    u8 r = 0;
    if (!reg_operand(st, 0, r) || !branch_target(st, 1, in.imm, 4096)) {
      return {};
    }
    if (it->second.second) {  // rs on the rs2 side (bgtz/blez)
      in.rs1 = 0;
      in.rs2 = r;
    } else {
      in.rs1 = r;
      in.rs2 = 0;
    }
    return one(in);
  }

  // ---- jumps --------------------------------------------------------------
  if (m == "jal") {
    in.op = Op::kJal;
    if (st.operands.size() == 1) {
      in.rd = 1;  // ra
      if (!branch_target(st, 0, in.imm, 1 << 20)) {
        return {};
      }
    } else {
      if (!reg_operand(st, 0, in.rd) || !branch_target(st, 1, in.imm, 1 << 20)) {
        return {};
      }
    }
    return one(in);
  }
  if (m == "j") {
    in.op = Op::kJal;
    in.rd = 0;
    if (!branch_target(st, 0, in.imm, 1 << 20)) {
      return {};
    }
    return one(in);
  }
  if (m == "call") {
    in.op = Op::kJal;
    in.rd = 1;
    if (!branch_target(st, 0, in.imm, 1 << 20)) {
      return {};
    }
    return one(in);
  }
  if (m == "jalr") {
    in.op = Op::kJalr;
    if (st.operands.size() == 1) {
      in.rd = 1;
      if (!reg_operand(st, 0, in.rs1)) {
        return {};
      }
    } else if (st.operands.size() == 2 && st.operands[1].find('(') != std::string::npos) {
      MemOperand mem;
      if (!reg_operand(st, 0, in.rd) || !mem_operand(st, 1, mem) || mem.post_increment) {
        return {};
      }
      in.rs1 = mem.base;
      in.imm = mem.offset;
    } else {
      if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs1)) {
        return {};
      }
      if (st.operands.size() > 2 && !imm_operand(st, 2, -2048, 2047, in.imm)) {
        return {};
      }
    }
    return one(in);
  }
  if (m == "jr") {
    in.op = Op::kJalr;
    in.rd = 0;
    if (!reg_operand(st, 0, in.rs1)) {
      return {};
    }
    return one(in);
  }
  if (m == "ret") {
    in.op = Op::kJalr;
    in.rd = 0;
    in.rs1 = 1;
    return one(in);
  }

  // ---- U-type ----------------------------------------------------------
  if (m == "lui" || m == "auipc") {
    in.op = m == "lui" ? Op::kLui : Op::kAuipc;
    i32 v = 0;
    if (!reg_operand(st, 0, in.rd) || !imm_operand(st, 1, 0, 0xFFFFF, v)) {
      return {};
    }
    in.imm = v << 12;
    return one(in);
  }

  // ---- AMO ----------------------------------------------------------------
  static const std::map<std::string, Op> kAmos = {
      {"amoswap.w", Op::kAmoSwapW}, {"amoadd.w", Op::kAmoAddW},
      {"amoxor.w", Op::kAmoXorW},   {"amoand.w", Op::kAmoAndW},
      {"amoor.w", Op::kAmoOrW},     {"amomin.w", Op::kAmoMinW},
      {"amomax.w", Op::kAmoMaxW},   {"amominu.w", Op::kAmoMinuW},
      {"amomaxu.w", Op::kAmoMaxuW}};
  if (const auto it = kAmos.find(m); it != kAmos.end()) {
    in.op = it->second;
    MemOperand mem;
    if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs2) ||
        !mem_operand(st, 2, mem) || mem.post_increment) {
      return {};
    }
    if (mem.offset != 0) {
      error(st.line, m + ": AMO address must have zero offset");
      return {};
    }
    in.rs1 = mem.base;
    return one(in);
  }
  if (m == "lr.w") {
    in.op = Op::kLrW;
    MemOperand mem;
    if (!reg_operand(st, 0, in.rd) || !mem_operand(st, 1, mem)) {
      return {};
    }
    in.rs1 = mem.base;
    return one(in);
  }
  if (m == "sc.w") {
    in.op = Op::kScW;
    MemOperand mem;
    if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs2) ||
        !mem_operand(st, 2, mem)) {
      return {};
    }
    in.rs1 = mem.base;
    return one(in);
  }

  // ---- CSR ----------------------------------------------------------------
  if (m == "csrrw" || m == "csrrs" || m == "csrrc") {
    in.op = m == "csrrw" ? Op::kCsrrw : (m == "csrrs" ? Op::kCsrrs : Op::kCsrrc);
    if (!reg_operand(st, 0, in.rd) || !csr_operand(st, 1, in.csr) ||
        !reg_operand(st, 2, in.rs1)) {
      return {};
    }
    return one(in);
  }
  if (m == "csrrwi" || m == "csrrsi" || m == "csrrci") {
    in.op = m == "csrrwi" ? Op::kCsrrwi : (m == "csrrsi" ? Op::kCsrrsi : Op::kCsrrci);
    if (!reg_operand(st, 0, in.rd) || !csr_operand(st, 1, in.csr) ||
        !imm_operand(st, 2, 0, 31, in.imm)) {
      return {};
    }
    return one(in);
  }
  if (m == "csrr") {
    in.op = Op::kCsrrs;
    in.rs1 = 0;
    if (!reg_operand(st, 0, in.rd) || !csr_operand(st, 1, in.csr)) {
      return {};
    }
    return one(in);
  }
  if (m == "csrw") {
    in.op = Op::kCsrrw;
    in.rd = 0;
    if (!csr_operand(st, 0, in.csr) || !reg_operand(st, 1, in.rs1)) {
      return {};
    }
    return one(in);
  }

  // ---- system / misc -------------------------------------------------------
  if (m == "ecall") {
    in.op = Op::kEcall;
    return one(in);
  }
  if (m == "ebreak") {
    in.op = Op::kEbreak;
    return one(in);
  }
  if (m == "wfi") {
    in.op = Op::kWfi;
    return one(in);
  }
  if (m == "fence") {
    in.op = Op::kFence;
    return one(in);
  }
  if (m == "nop") {
    in.op = Op::kAddi;
    return one(in);
  }

  // ---- pseudo: mv / not / neg / set-compare ------------------------------
  if (m == "mv") {
    in.op = Op::kAddi;
    if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs1)) {
      return {};
    }
    return one(in);
  }
  if (m == "not") {
    in.op = Op::kXori;
    in.imm = -1;
    if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs1)) {
      return {};
    }
    return one(in);
  }
  if (m == "neg") {
    in.op = Op::kSub;
    in.rs1 = 0;
    if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs2)) {
      return {};
    }
    return one(in);
  }
  if (m == "seqz") {
    in.op = Op::kSltiu;
    in.imm = 1;
    if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs1)) {
      return {};
    }
    return one(in);
  }
  if (m == "snez") {
    in.op = Op::kSltu;
    in.rs1 = 0;
    if (!reg_operand(st, 0, in.rd) || !reg_operand(st, 1, in.rs2)) {
      return {};
    }
    return one(in);
  }

  // ---- pseudo: li / la ------------------------------------------------------
  if (m == "li" || m == "la") {
    u8 rd = 0;
    if (!reg_operand(st, 0, rd)) {
      return {};
    }
    long long v = 0;
    if (st.operands.size() < 2 || !eval(st.operands[1], st.addr, v)) {
      error(st.line, m + ": cannot evaluate operand");
      return {};
    }
    const auto value = static_cast<u32>(v);
    if (st.words == 1) {
      Instr addi;
      addi.op = Op::kAddi;
      addi.rd = rd;
      addi.rs1 = 0;
      addi.imm = static_cast<i32>(value);
      return one(addi);
    }
    // lui+addi pair, correcting for the sign extension of the low part.
    const u32 hi = (value + 0x800U) & 0xFFFFF000U;
    const auto lo = static_cast<i32>(value - hi);
    Instr lui;
    lui.op = Op::kLui;
    lui.rd = rd;
    lui.imm = static_cast<i32>(hi);
    Instr addi;
    addi.op = Op::kAddi;
    addi.rd = rd;
    addi.rs1 = rd;
    addi.imm = lo;
    return {encode(lui), encode(addi)};
  }

  error(st.line, "unknown mnemonic '" + m + "'");
  return {};
}

}  // namespace

int parse_register(std::string_view name) {
  const std::string n = to_lower(trim(name));
  if (n.size() >= 2 && n[0] == 'x') {
    long long idx = 0;
    if (parse_int(n.substr(1), idx) && idx >= 0 && idx < 32) {
      return static_cast<int>(idx);
    }
    return -1;
  }
  if (n == "fp") {
    return 8;
  }
  for (int i = 0; i < 32; ++i) {
    if (n == kAbiNames[i]) {
      return i;
    }
  }
  return -1;
}

const char* register_abi_name(unsigned reg) {
  MP3D_ASSERT(reg < 32);
  return kAbiNames[reg];
}

Program assemble(std::string_view source, const AsmOptions& options) {
  Assembler assembler(options);
  return assembler.run(source);
}

}  // namespace mp3d::isa
