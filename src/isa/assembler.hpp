// SPDX-License-Identifier: Apache-2.0
// Two-pass assembler for the RV32IMA+Zicsr+Xpulpimg subset.
//
// Supported syntax (one statement per line, '#', '//' or ';' comments):
//
//   .text [addr]       switch location counter (new segment)
//   .data [addr]
//   .org  addr
//   .word expr[, ...]
//   .space bytes
//   .align bytes       pad with zeros to a power-of-two boundary
//   .equ  name, expr
//   .global name       accepted and ignored
//
//   label:             define label at current location
//   add  rd, rs1, rs2  standard mnemonics, ABI or xN register names
//   lw   rd, off(rs1)
//   p.lw rd, off(rs1!) post-incrementing variants (note the '!')
//   p.lw rd, rs2(rs1!)
//   p.sw rs2, off(rs1!)
//   amoadd.w rd, rs2, (rs1)
//   csrr rd, mhartid   CSR names: mhartid/mcycle/minstret or numeric
//   li / la / mv / j / jr / call / ret / nop / beqz / bnez / ...
//
// Expressions: integers (dec/hex/bin), symbols, + and -, %hi(x), %lo(x).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "isa/program.hpp"

namespace mp3d::isa {

struct AsmOptions {
  u32 default_base = 0x8000'0000;  ///< initial location counter (.text default)
};

class AsmError : public std::runtime_error {
 public:
  explicit AsmError(const std::string& what, std::vector<std::string> errors)
      : std::runtime_error(what), errors_(std::move(errors)) {}
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::vector<std::string> errors_;
};

/// Assemble `source`; throws AsmError listing every diagnosed problem.
Program assemble(std::string_view source, const AsmOptions& options = {});

/// Register-name lookup: "x7", "t2", "s0"/"fp", ... Returns -1 if unknown.
int parse_register(std::string_view name);
/// ABI name of register n (0..31).
const char* register_abi_name(unsigned reg);

}  // namespace mp3d::isa
