// SPDX-License-Identifier: Apache-2.0
// Program image produced by the assembler and consumed by the cluster
// loader: a set of word-aligned segments plus a symbol table.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace mp3d::isa {

struct Segment {
  u32 base = 0;               ///< byte address, word aligned
  std::vector<u32> words;

  u32 end() const { return base + static_cast<u32>(words.size()) * 4; }
};

class Program {
 public:
  void add_segment(Segment segment);
  void define_symbol(const std::string& name, u32 value);

  const std::vector<Segment>& segments() const { return segments_; }
  const std::map<std::string, u32>& symbols() const { return symbols_; }

  std::optional<u32> symbol(const std::string& name) const;
  /// Throws std::out_of_range with a helpful message when missing.
  u32 symbol_or_throw(const std::string& name) const;

  u32 entry() const { return entry_; }
  void set_entry(u32 entry) { entry_ = entry; }

  /// Read one word; returns nullopt when the address is not covered.
  std::optional<u32> read_word(u32 addr) const;
  /// Total size of all segments in bytes.
  u64 total_bytes() const;
  bool empty() const { return segments_.empty(); }

 private:
  std::vector<Segment> segments_;
  std::map<std::string, u32> symbols_;
  u32 entry_ = 0;
};

}  // namespace mp3d::isa
