// SPDX-License-Identifier: Apache-2.0
// Binary encode/decode between 32-bit instruction words and `Instr`.
// Standard RV32IMA/Zicsr encodings follow the RISC-V unprivileged spec.
// Xpulpimg subset encoding (library-defined, see instr.hpp):
//   p.lw  rd, imm(rs1!)  : custom-0 (0001011), I-type, funct3=010
//   p.lw  rd, rs2(rs1!)  : custom-0 (0001011), R-type, funct3=110, funct7=0
//   p.sw  rs2, imm(rs1!) : custom-1 (0101011), S-type, funct3=010
//   p.mac rd, rs1, rs2   : OP (0110011), funct3=000, funct7=0100001
//   p.msu rd, rs1, rs2   : OP (0110011), funct3=001, funct7=0100001
//   p.max rd, rs1, rs2   : OP (0110011), funct3=000, funct7=0100010
//   p.min rd, rs1, rs2   : OP (0110011), funct3=001, funct7=0100010
//   p.abs rd, rs1        : OP (0110011), funct3=010, funct7=0100010 (rs2=0)
#pragma once

#include "common/units.hpp"
#include "isa/instr.hpp"

namespace mp3d::isa {

/// Decode one instruction word. Returns Instr with op == kInvalid on
/// unsupported/illegal encodings (the core raises an error on execution).
Instr decode(u32 word);

/// Encode an Instr back to a word. Asserts on immediates that do not fit
/// the encoding (the assembler range-checks first and reports errors).
u32 encode(const Instr& instr);

}  // namespace mp3d::isa
