// SPDX-License-Identifier: Apache-2.0
#include "sys/scheduler.hpp"

#include "common/assert.hpp"

namespace mp3d::sys {

JobScheduler::JobScheduler(SchedPolicy policy, u32 num_clusters)
    : policy_(policy), num_clusters_(num_clusters) {
  MP3D_CHECK(num_clusters_ >= 1, "JobScheduler needs at least one cluster");
  rr_cursor_.resize(num_clusters_);
}

void JobScheduler::reset(std::size_t num_jobs) {
  num_jobs_ = num_jobs;
  dispatched_ = 0;
  fifo_cursor_ = 0;
  for (u32 k = 0; k < num_clusters_; ++k) {
    rr_cursor_[k] = k;  // cluster k's first pinned job is job k
  }
}

std::optional<std::size_t> JobScheduler::next_job(u32 cluster) {
  MP3D_CHECK(cluster < num_clusters_, "scheduler cluster id out of range");
  switch (policy_) {
    case SchedPolicy::kRoundRobin: {
      const std::size_t job = rr_cursor_[cluster];
      if (job >= num_jobs_) {
        return std::nullopt;
      }
      rr_cursor_[cluster] = job + num_clusters_;
      ++dispatched_;
      return job;
    }
    case SchedPolicy::kLeastLoaded: {
      if (fifo_cursor_ >= num_jobs_) {
        return std::nullopt;
      }
      ++dispatched_;
      return fifo_cursor_++;
    }
  }
  return std::nullopt;
}

}  // namespace mp3d::sys
