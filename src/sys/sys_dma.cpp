// SPDX-License-Identifier: Apache-2.0
#include "sys/sys_dma.hpp"

#include <algorithm>

#include "arch/global_mem.hpp"
#include "common/assert.hpp"

namespace mp3d::sys {

SysDma::SysDma(const SysDmaConfig& cfg, ClusterIcn& icn,
               std::vector<arch::GlobalMemory*> shards)
    : cfg_(cfg), icn_(icn), shards_(std::move(shards)) {
  cfg_.validate();
  MP3D_CHECK(shards_.size() == icn_.num_clusters(),
             "SysDma needs one gmem shard per cluster");
  engines_.resize(shards_.size());
  trackers_.resize(shards_.size());
}

bool SysDma::can_accept(u32 engine) const {
  const Engine& e = engines_[engine];
  return e.queue.size() + (e.active ? 1 : 0) < cfg_.queue_depth;
}

u64 SysDma::push(u32 engine, C2cDescriptor descriptor) {
  MP3D_CHECK(engine < num_engines(), "SysDma engine id out of range");
  MP3D_CHECK(can_accept(engine), "SysDma engine queue full");
  MP3D_CHECK(descriptor.src_cluster < num_engines() &&
                 descriptor.dst_cluster < num_engines(),
             "C2cDescriptor cluster id out of range");
  MP3D_CHECK(descriptor.bytes > 0 && descriptor.bytes % 4 == 0,
             "C2cDescriptor bytes must be a positive multiple of 4");
  MP3D_CHECK((descriptor.src_addr | descriptor.dst_addr) % 4 == 0,
             "C2cDescriptor addresses must be word aligned");
  descriptor.ticket = trackers_[engine].next_ticket();
  Engine& e = engines_[engine];
  e.backlog_bytes += descriptor.bytes;
  e.queue.push_back(descriptor);
  return descriptor.ticket;
}

void SysDma::move_word(const C2cDescriptor& d, u64 word_index) {
  const u32 offset = static_cast<u32>(word_index * 4);
  const u32 value = shards_[d.src_cluster]->read_word(d.src_addr + offset);
  shards_[d.dst_cluster]->write_word(d.dst_addr + offset, value);
}

void SysDma::step_engine(u32 e, sim::Cycle now) {
  Engine& engine = engines_[e];
  // Retire completions whose wire latency has passed (done_at can be
  // non-monotone across routes of different hop counts; the tracker's
  // watermark stays in ticket order regardless).
  while (!engine.completing.empty()) {
    auto it = std::min_element(
        engine.completing.begin(), engine.completing.end(),
        [](const Completion& a, const Completion& b) { return a.done_at < b.done_at; });
    if (it->done_at > now) {
      break;
    }
    trackers_[e].note_retired(it->ticket);
    ++descriptors_completed_;
    engine.completing.erase(it);
  }
  if (!engine.active) {
    if (engine.queue.empty()) {
      return;
    }
    engine.current = engine.queue.front();
    engine.queue.pop_front();
    engine.active = true;
    engine.granted_bytes = 0;
    engine.moved_words = 0;
  }
  const C2cDescriptor& d = engine.current;
  const u64 remaining = d.bytes - engine.granted_bytes;
  const u32 ask = static_cast<u32>(
      std::min<u64>(remaining, cfg_.port_bytes_per_cycle));
  const u32 granted = icn_.claim(d.src_cluster, d.dst_cluster, ask, now);
  if (granted == 0) {
    return;
  }
  engine.granted_bytes += granted;
  engine.backlog_bytes -= granted;
  bytes_moved_ += granted;
  const u64 words_ready = engine.granted_bytes / 4;
  while (engine.moved_words < words_ready) {
    move_word(d, engine.moved_words);
    ++engine.moved_words;
  }
  if (engine.granted_bytes == d.bytes) {
    const u32 wire = icn_.route_latency(d.src_cluster, d.dst_cluster);
    if (wire == 0) {
      // Zero-hop route (home-local copy): the descriptor completes the
      // cycle its last byte is granted — no wire to drain.
      trackers_[e].note_retired(d.ticket);
      ++descriptors_completed_;
    } else {
      engine.completing.push_back(Completion{now + wire, d.ticket});
    }
    engine.active = false;
  }
}

void SysDma::step_component(sim::Cycle now) {
  const u32 n = num_engines();
  const u64 before = bytes_moved_;
  for (u32 i = 0; i < n; ++i) {
    step_engine((step_rr_ + i) % n, now);
  }
  step_rr_ = n == 0 ? 0 : (step_rr_ + 1) % n;
  if (bytes_moved_ != before) {
    ++busy_cycles_;
  }
}

sim::Cycle SysDma::next_event_cycle(sim::Cycle now) const {
  sim::Cycle next = sim::kNever;
  for (const Engine& e : engines_) {
    if (e.backlog_bytes > 0) {
      return now + 1;  // an engine claims link bytes every cycle
    }
    for (const Completion& c : e.completing) {
      next = std::min(next, c.done_at);
    }
  }
  return next;
}

bool SysDma::idle() const {
  return std::all_of(engines_.begin(), engines_.end(), [](const Engine& e) {
    return !e.active && e.queue.empty() && e.completing.empty();
  });
}

u64 SysDma::backlog_bytes() const {
  u64 total = 0;
  for (const Engine& e : engines_) {
    total += e.backlog_bytes;
  }
  return total;
}

void SysDma::reset_run_state() {
  for (Engine& e : engines_) {
    e = Engine{};
  }
  for (arch::DmaRetireTracker& tracker : trackers_) {
    tracker.reset();
  }
  step_rr_ = 0;
  bytes_moved_ = 0;
  descriptors_completed_ = 0;
  busy_cycles_ = 0;
}

void SysDma::add_counters(sim::CounterSet& counters) const {
  counters.set("sys.dma.bytes", bytes_moved_);
  counters.set("sys.dma.descriptors", descriptors_completed_);
  counters.set("sys.dma.busy_cycles", busy_cycles_);
}

}  // namespace mp3d::sys
