// SPDX-License-Identifier: Apache-2.0
#include "sys/icn.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mp3d::sys {

ClusterIcn::ClusterIcn(const IcnConfig& cfg, u32 num_clusters)
    : cfg_(cfg), num_clusters_(num_clusters) {
  cfg_.validate();
  MP3D_CHECK(num_clusters_ >= 1, "ClusterIcn needs at least one cluster");
  cols_ = 1;
  while (cols_ * cols_ < num_clusters_) {
    ++cols_;
  }
  egress_left_.assign(num_clusters_, 0);
  ingress_left_.assign(num_clusters_, 0);
}

u32 ClusterIcn::hops(u32 src, u32 dst) const {
  MP3D_ASSERT(src < num_clusters_ && dst < num_clusters_);
  const u32 sx = src % cols_;
  const u32 sy = src / cols_;
  const u32 dx = dst % cols_;
  const u32 dy = dst / cols_;
  return (sx > dx ? sx - dx : dx - sx) + (sy > dy ? sy - dy : dy - sy);
}

void ClusterIcn::refresh_budgets(sim::Cycle now) {
  if (stamp_ == now) {
    return;
  }
  stamp_ = now;
  std::fill(egress_left_.begin(), egress_left_.end(), cfg_.link_bytes_per_cycle);
  std::fill(ingress_left_.begin(), ingress_left_.end(), cfg_.link_bytes_per_cycle);
}

u32 ClusterIcn::claim(u32 src, u32 dst, u32 bytes, sim::Cycle now) {
  refresh_budgets(now);
  const u32 granted = std::min({bytes, egress_left_[src], ingress_left_[dst]});
  if (granted == 0) {
    if (bytes > 0) {
      ++starved_claims_;
    }
    return 0;
  }
  egress_left_[src] -= granted;
  ingress_left_[dst] -= granted;
  bytes_moved_ += granted;
  byte_hops_ += static_cast<u64>(granted) * hops(src, dst);
  if (src == dst) {
    local_bytes_ += granted;
  }
  return granted;
}

void ClusterIcn::reset_run_state() {
  stamp_ = sim::kNever;
  std::fill(egress_left_.begin(), egress_left_.end(), 0);
  std::fill(ingress_left_.begin(), ingress_left_.end(), 0);
  bytes_moved_ = 0;
  byte_hops_ = 0;
  local_bytes_ = 0;
  starved_claims_ = 0;
}

void ClusterIcn::add_counters(sim::CounterSet& counters) const {
  counters.set("sys.icn.bytes", bytes_moved_);
  counters.set("sys.icn.byte_hops", byte_hops_);
  counters.set("sys.icn.local_bytes", local_bytes_);
  counters.set("sys.icn.starved_claims", starved_claims_);
}

}  // namespace mp3d::sys
