// SPDX-License-Identifier: Apache-2.0
// Job-to-cluster assignment policies of the system scheduler.
//
//   * round_robin:  job i is pinned to cluster i mod N (static
//     partitioning — a job waits for its designated cluster even when
//     another is free; assignment is independent of timing).
//   * least_loaded: one global FIFO; whenever a cluster goes idle it takes
//     the front job. Free clusters are offered work in ascending id each
//     cycle, so the assignment is deterministic while still adapting to
//     job-length skew.
//
// Both policies are pure functions of (policy, N, job order): a sweep's
// CSV bytes cannot depend on host timing.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sys/params.hpp"

namespace mp3d::sys {

class JobScheduler {
 public:
  JobScheduler(SchedPolicy policy, u32 num_clusters);

  /// Start a fresh run over `num_jobs` jobs (indices 0..num_jobs-1).
  void reset(std::size_t num_jobs);

  /// The next job index for newly idle `cluster`, or nullopt when no job
  /// is available for it. The returned job is consumed.
  std::optional<std::size_t> next_job(u32 cluster);

  /// Every job has been handed out (not necessarily finished).
  bool all_dispatched() const { return dispatched_ == num_jobs_; }

 private:
  SchedPolicy policy_;
  u32 num_clusters_;
  std::size_t num_jobs_ = 0;
  std::size_t dispatched_ = 0;
  std::size_t fifo_cursor_ = 0;           ///< kLeastLoaded: global FIFO front
  std::vector<std::size_t> rr_cursor_;    ///< kRoundRobin: per-cluster next job
};

}  // namespace mp3d::sys
