// SPDX-License-Identifier: Apache-2.0
#include "sys/energy.hpp"

namespace mp3d::sys {

SystemEnergyReport account_system(const SystemResult& result,
                                  const power::OperatingPoint& op,
                                  const IcnConfig& icn) {
  SystemEnergyReport report;
  bool first = true;
  for (const JobRecord& job : result.jobs) {
    if (!job.dispatched) {
      continue;
    }
    const power::EnergyReport r = power::account(job.result, op);
    if (first) {
      report.clusters.op_name = r.op_name;
      report.clusters.freq_ghz = r.freq_ghz;
      first = false;
    }
    report.clusters.core_nj += r.core_nj;
    report.clusters.spm_nj += r.spm_nj;
    report.clusters.dma_nj += r.dma_nj;
    report.clusters.icache_nj += r.icache_nj;
    report.clusters.noc_nj += r.noc_nj;
    report.clusters.gmem_nj += r.gmem_nj;
    report.clusters.gmem_scalar_nj += r.gmem_scalar_nj;
    report.clusters.gmem_bulk_nj += r.gmem_bulk_nj;
    report.clusters.leakage_nj += r.leakage_nj;
    report.clusters.background_nj += r.background_nj;
  }
  report.clusters.cycles = result.cycles;
  if (report.clusters.freq_ghz > 0.0) {
    report.clusters.runtime_ns =
        static_cast<double>(result.cycles) / report.clusters.freq_ghz;
  }
  report.icn_nj = static_cast<double>(result.counters.get("sys.icn.byte_hops")) *
                  icn.pj_per_byte_hop * 1e-3;
  return report;
}

}  // namespace mp3d::sys
