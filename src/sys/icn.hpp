// SPDX-License-Identifier: Apache-2.0
// Inter-cluster interconnect: the system-level fabric the cluster-to-
// cluster DMA moves bytes through.
//
// Clusters sit on a 2D mesh (ceil-sqrt columns, XY routing). The model is
// transfer-level, matching GlobalMemory's channel style rather than the
// intra-cluster flit-level NoC: every cluster owns one egress and one
// ingress port with a per-cycle byte budget, and a claim for (src -> dst)
// is granted min(egress[src], ingress[dst], asked) bytes. Budgets are
// stamped per cycle on first claim, so the fabric is passive between
// claims (next_event_cycle = kNever) and needs no catch-up on a
// fast-forward jump. Hop distance only adds latency (charged by the DMA
// engine on completion) and energy (`sys.icn.byte_hops` x pj_per_byte_hop,
// costed by sys::account_system); a local src == dst claim models the
// shard port with zero hops.
#pragma once

#include <vector>

#include "sim/stepped.hpp"
#include "sys/params.hpp"

namespace mp3d::sys {

class ClusterIcn final : public sim::SteppedComponent {
 public:
  ClusterIcn(const IcnConfig& cfg, u32 num_clusters);

  u32 num_clusters() const { return num_clusters_; }
  const IcnConfig& config() const { return cfg_; }

  /// XY mesh distance between two clusters (0 when src == dst).
  u32 hops(u32 src, u32 dst) const;
  /// One-way wire latency of the route in cycles.
  u32 route_latency(u32 src, u32 dst) const { return cfg_.hop_latency * hops(src, dst); }

  /// Grant up to `bytes` of cycle `now`'s remaining link budget for a
  /// src -> dst transfer (both ports are debited; src == dst debits the
  /// cluster's ports once each). Returns the granted byte count.
  u32 claim(u32 src, u32 dst, u32 bytes, sim::Cycle now);

  u64 bytes_moved() const { return bytes_moved_; }
  u64 byte_hops() const { return byte_hops_; }

  // ---- sim::SteppedComponent -----------------------------------------------
  void step_component(sim::Cycle /*now*/) override {}  // passive: see header
  sim::Cycle next_event_cycle(sim::Cycle /*now*/) const override {
    return sim::kNever;
  }
  void reset_run_state() override;
  void add_counters(sim::CounterSet& counters) const override;
  u64 activity() const override { return bytes_moved_; }

 private:
  void refresh_budgets(sim::Cycle now);

  IcnConfig cfg_;
  u32 num_clusters_;
  u32 cols_;
  sim::Cycle stamp_ = sim::kNever;  ///< cycle the budgets were refreshed for
  std::vector<u32> egress_left_;
  std::vector<u32> ingress_left_;

  u64 bytes_moved_ = 0;
  u64 byte_hops_ = 0;       ///< sum over grants of bytes x hops (energy witness)
  u64 local_bytes_ = 0;     ///< src == dst grants (home-shard self-copies)
  u64 starved_claims_ = 0;  ///< nonzero asks granted 0 bytes (port contention)
};

}  // namespace mp3d::sys
