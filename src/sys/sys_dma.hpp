// SPDX-License-Identifier: Apache-2.0
// Cluster-to-cluster DMA: one engine per cluster moving bytes between
// global-memory shards through the inter-cluster interconnect.
//
// A descriptor names a linear copy from (src_cluster, src_addr) to
// (dst_cluster, dst_addr). Every cycle the owning engine claims bytes for
// its active descriptor from the icn link budgets (capped by the engine's
// own port width); whole words move functionally as bytes are granted,
// and the descriptor retires `hop_latency * hops` cycles after its last
// byte — the same grant-then-latency shape as the intra-cluster
// DmaEngine, with the mesh route standing in for the gmem channel.
//
// Engines are served in a per-cycle rotated order (and the rotation is
// advanced across fast-forward jumps), so no engine permanently wins a
// contended home-shard port and the schedule is bit-identical with the
// fast path on or off. Tickets are per-engine sequential; retirement is
// reported through an in-order watermark (arch::DmaRetireTracker), which
// the job scheduler polls.
#pragma once

#include <deque>
#include <vector>

#include "arch/dma.hpp"
#include "sim/stepped.hpp"
#include "sys/icn.hpp"
#include "sys/params.hpp"

namespace mp3d::arch {
class GlobalMemory;
}

namespace mp3d::sys {

/// A validated cluster-to-cluster copy request.
struct C2cDescriptor {
  u32 src_cluster = 0;
  u32 dst_cluster = 0;
  u32 src_addr = 0;  ///< byte address in the source shard's gmem window
  u32 dst_addr = 0;  ///< byte address in the destination shard's gmem window
  u64 bytes = 0;     ///< positive multiple of 4
  u64 ticket = 0;    ///< per-engine sequential id (assigned at push)
};

class SysDma final : public sim::SteppedComponent {
 public:
  SysDma(const SysDmaConfig& cfg, ClusterIcn& icn,
         std::vector<arch::GlobalMemory*> shards);

  u32 num_engines() const { return static_cast<u32>(engines_.size()); }
  bool can_accept(u32 engine) const;
  /// Queue a copy on `engine` (pre: can_accept); returns its ticket.
  u64 push(u32 engine, C2cDescriptor descriptor);
  /// In-order retired watermark of `engine`: every descriptor with
  /// ticket <= retired(engine) has completed (data moved, wire drained).
  u64 retired(u32 engine) const { return trackers_[engine].watermark(); }
  u64 issued(u32 engine) const { return trackers_[engine].issued(); }

  bool idle() const;
  u64 backlog_bytes() const;

  /// Account `span` skipped cycles across a fast-forward jump: only the
  /// per-cycle engine-service rotation carries state (pre: the jump lies
  /// before next_event_cycle()).
  void skip_cycles(u64 span) {
    const u32 n = num_engines();
    step_rr_ = n == 0 ? 0 : static_cast<u32>((step_rr_ + span % n) % n);
  }

  // ---- sim::SteppedComponent -----------------------------------------------
  void step_component(sim::Cycle now) override;
  sim::Cycle next_event_cycle(sim::Cycle now) const override;
  void reset_run_state() override;
  void add_counters(sim::CounterSet& counters) const override;
  u64 activity() const override { return bytes_moved_ + descriptors_completed_; }

 private:
  struct Completion {
    sim::Cycle done_at = 0;
    u64 ticket = 0;
  };
  struct Engine {
    std::deque<C2cDescriptor> queue;
    bool active = false;
    C2cDescriptor current;
    u64 granted_bytes = 0;  ///< icn bytes claimed for `current`
    u64 moved_words = 0;    ///< words functionally moved for `current`
    u64 backlog_bytes = 0;  ///< ungranted bytes across queue + current
    std::deque<Completion> completing;
  };

  void step_engine(u32 e, sim::Cycle now);
  void move_word(const C2cDescriptor& d, u64 word_index);

  SysDmaConfig cfg_;
  ClusterIcn& icn_;
  std::vector<arch::GlobalMemory*> shards_;
  std::vector<Engine> engines_;
  std::vector<arch::DmaRetireTracker> trackers_;
  u32 step_rr_ = 0;

  u64 bytes_moved_ = 0;
  u64 descriptors_completed_ = 0;
  u64 busy_cycles_ = 0;
};

}  // namespace mp3d::sys
