// SPDX-License-Identifier: Apache-2.0
// System-level energy accounting: the per-cluster reports of every job,
// summed field-wise, plus the inter-cluster wire energy the cluster-level
// model cannot see (sys.icn.byte_hops x IcnConfig::pj_per_byte_hop).
//
// power::EnergyReport itself is untouched — its field set and CSV column
// order are pinned by the single-cluster suites — so the system report
// wraps one as the cluster aggregate and adds the fabric on the side.
#pragma once

#include "power/energy_model.hpp"
#include "power/report.hpp"
#include "sys/params.hpp"
#include "sys/system.hpp"

namespace mp3d::sys {

struct SystemEnergyReport {
  /// Field-wise sum of every dispatched job's cluster report. `cycles` and
  /// `runtime_ns` are the *system* run's (wall time of the whole shard),
  /// while leakage/background sum each cluster's own active span — an idle
  /// cluster is power-gated, matching the weak-scaling model.
  power::EnergyReport clusters;
  /// Inter-cluster interconnect wire energy [nJ].
  double icn_nj = 0.0;

  double total_nj() const { return clusters.total_nj() + icn_nj; }
  /// Fabric share of the total (0 when nothing crossed the mesh).
  double icn_fraction() const {
    const double total = total_nj();
    return total > 0.0 ? icn_nj / total : 0.0;
  }
};

/// Cost a finished system run under `op`. The icn energy is derived from
/// the run's `sys.icn.byte_hops` counter, so a local (same-cluster) claim
/// is free wire exactly as a zero-hop route should be.
SystemEnergyReport account_system(const SystemResult& result,
                                  const power::OperatingPoint& op,
                                  const IcnConfig& icn);

}  // namespace mp3d::sys
