// SPDX-License-Identifier: Apache-2.0
// Configuration of the hierarchical multi-cluster system: N identical
// Clusters, each owning one shard of the partitioned global memory,
// connected by an inter-cluster interconnect with its own hop latencies
// and energies, plus per-cluster cluster-to-cluster DMA engines and a job
// scheduler. Mirrors the MemPool line's scaling recipe: keep the cluster,
// add a hierarchy level.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

#include "arch/params.hpp"

namespace mp3d::sys {

/// Inter-cluster interconnect: clusters sit on a 2D mesh (ceil-sqrt
/// columns, XY routing); every cluster owns one egress and one ingress
/// port of `link_bytes_per_cycle`, and a byte traverses
/// `hop_latency * hops` cycles of wire after its last byte is granted.
struct IcnConfig {
  u32 link_bytes_per_cycle = 64;  ///< per cluster port, per direction
  u32 hop_latency = 8;            ///< cycles per mesh hop
  /// Inter-cluster wire energy per byte per hop [pJ] — long on-package
  /// links, several times the intra-cluster global-net hop cost.
  double pj_per_byte_hop = 1.5;

  void validate() const {
    if (link_bytes_per_cycle == 0 || link_bytes_per_cycle % 4 != 0) {
      throw std::invalid_argument(
          "IcnConfig::link_bytes_per_cycle must be a positive multiple of 4");
    }
    if (pj_per_byte_hop < 0.0) {
      throw std::invalid_argument("IcnConfig::pj_per_byte_hop must be >= 0");
    }
  }
};

/// Cluster-to-cluster DMA: one engine per cluster, each with a bounded
/// descriptor queue and an SPM-port-style per-cycle byte cap (the engine's
/// claim is additionally limited by the icn link budgets).
struct SysDmaConfig {
  u32 queue_depth = 8;
  u32 port_bytes_per_cycle = 64;

  void validate() const {
    if (queue_depth == 0) {
      throw std::invalid_argument("SysDmaConfig::queue_depth must be >= 1");
    }
    if (port_bytes_per_cycle == 0 || port_bytes_per_cycle % 4 != 0) {
      throw std::invalid_argument(
          "SysDmaConfig::port_bytes_per_cycle must be a positive multiple of 4");
    }
  }
};

/// Job-to-cluster assignment policy of the scheduler.
enum class SchedPolicy {
  kRoundRobin,   ///< job i pinned to cluster i mod N (static partitioning)
  kLeastLoaded,  ///< global FIFO: an idle cluster takes the front job
};

inline const char* to_string(SchedPolicy policy) {
  return policy == SchedPolicy::kRoundRobin ? "round_robin" : "least_loaded";
}

struct SystemConfig {
  u32 num_clusters = 1;
  /// Replicated per-cluster configuration (each cluster's gmem window is
  /// its shard of the system's partitioned global memory).
  arch::ClusterConfig cluster = arch::ClusterConfig::mempool();
  IcnConfig icn;
  SysDmaConfig sys_dma;
  SchedPolicy policy = SchedPolicy::kRoundRobin;
  /// Shard holding every job's staged inputs/outputs (the "home" memory).
  u32 home_cluster = 0;

  u32 mesh_cols() const {
    return static_cast<u32>(
        std::ceil(std::sqrt(static_cast<double>(num_clusters))));
  }

  void validate() const {
    if (num_clusters == 0 || num_clusters > 64) {
      throw std::invalid_argument("SystemConfig::num_clusters must be 1..64");
    }
    if (home_cluster >= num_clusters) {
      throw std::invalid_argument("SystemConfig::home_cluster out of range");
    }
    cluster.validate();
    icn.validate();
    sys_dma.validate();
  }

  std::string to_string() const;
};

}  // namespace mp3d::sys
