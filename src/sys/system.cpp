// SPDX-License-Identifier: Apache-2.0
#include "sys/system.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/collector.hpp"

namespace mp3d::sys {

namespace {

/// Translate a cluster-local cycle to the system clock (kNever saturates).
sim::Cycle to_system_cycle(sim::Cycle local, sim::Cycle offset) {
  return local >= sim::kNever - offset ? sim::kNever : local + offset;
}

u64 round_up4(u64 bytes) { return (bytes + 3) & ~u64{3}; }

}  // namespace

std::string SystemConfig::to_string() const {
  std::ostringstream oss;
  oss << "System{clusters=" << num_clusters << " mesh_cols=" << mesh_cols()
      << " icn=" << icn.link_bytes_per_cycle << "B/cy/" << icn.hop_latency
      << "cy-hop sys_dma=" << sys_dma.port_bytes_per_cycle << "B/cy x"
      << sys_dma.queue_depth << " policy=" << sys::to_string(policy)
      << " home=" << home_cluster << "}";
  return oss.str();
}

System::System(SystemConfig cfg)
    : cfg_(std::move(cfg)), scheduler_(cfg_.policy, cfg_.num_clusters) {
  cfg_.validate();
  clusters_.reserve(cfg_.num_clusters);
  std::vector<arch::GlobalMemory*> shards;
  shards.reserve(cfg_.num_clusters);
  for (u32 k = 0; k < cfg_.num_clusters; ++k) {
    clusters_.push_back(std::make_unique<arch::Cluster>(cfg_.cluster));
    shards.push_back(&clusters_.back()->gmem());
  }
  icn_ = std::make_unique<ClusterIcn>(cfg_.icn, cfg_.num_clusters);
  sdma_ = std::make_unique<SysDma>(cfg_.sys_dma, *icn_, std::move(shards));
  seats_.resize(cfg_.num_clusters);
  loaded_.assign(cfg_.num_clusters, 0);
  fast_forward_ = clusters_[0]->fast_forward_enabled();
  home_slot_top_ = cfg_.cluster.gmem_base + cfg_.cluster.gmem_size;
}

System::~System() = default;

void System::reset_run_state() {
  for (u32 k = 0; k < num_clusters(); ++k) {
    if (loaded_[k] != 0) {
      clusters_[k]->reset_run_state();
    }
  }
  icn_->reset_run_state();
  sdma_->reset_run_state();
  cycle_ = 0;
  std::fill(seats_.begin(), seats_.end(), Seat{});
  records_.clear();
  jobs_done_ = 0;
  home_slot_top_ = cfg_.cluster.gmem_base + cfg_.cluster.gmem_size;
  last_activity_value_ = 0;
  last_activity_cycle_ = 0;
}

u32 System::alloc_home_slot(u64 bytes) {
  bytes = round_up4(bytes);
  MP3D_CHECK(bytes <= home_slot_top_, "home-shard staging slot underflow");
  home_slot_top_ -= bytes;
  // Kernel code and data grow from the bottom of the shard; staging slots
  // grow down from the top. Keeping the slots in the upper half guarantees
  // they never overlap a GmemAllocator allocation.
  MP3D_CHECK(home_slot_top_ >=
                 cfg_.cluster.gmem_base + cfg_.cluster.gmem_size / 2,
             "home-shard staging slots would overlap kernel data");
  return static_cast<u32>(home_slot_top_);
}

void System::begin_staging_in(u32 k, const JobSpec& spec) {
  Seat& seat = seats_[k];
  arch::GlobalMemory& home = clusters_[cfg_.home_cluster]->gmem();
  arch::GlobalMemory& worker = clusters_[k]->gmem();
  // The init hook wrote the inputs into the worker's shard (the host-side
  // programming model). Home the same bytes on the home shard, then move
  // them back over the mesh as a timed transfer: the data is unchanged,
  // but the run pays the real staging latency, link occupancy and hop
  // energy of inputs that live in home memory.
  for (u64 off = 0; off < spec.input_bytes; off += 4) {
    home.write_word(static_cast<u32>(seat.home_slot + off),
                    worker.read_word(static_cast<u32>(spec.input_base + off)));
  }
  seat.staging_ticket =
      sdma_->push(k, C2cDescriptor{cfg_.home_cluster, k, seat.home_slot,
                                   spec.input_base, spec.input_bytes, 0});
  seat.state = ClusterState::kStagingIn;
}

void System::begin_running(u32 k) {
  Seat& seat = seats_[k];
  seat.state = ClusterState::kRunning;
  seat.offset = cycle_;
  records_[seat.job].started_at = cycle_;
}

void System::dispatch_jobs(std::vector<JobSpec>& jobs) {
  for (u32 k = 0; k < num_clusters(); ++k) {
    if (seats_[k].state != ClusterState::kIdle) {
      continue;
    }
    const std::optional<std::size_t> job = scheduler_.next_job(k);
    if (!job.has_value()) {
      continue;
    }
    Seat& seat = seats_[k];
    seat.job = *job;
    JobSpec& spec = jobs[*job];
    JobRecord& rec = records_[*job];
    rec.cluster = k;
    rec.assigned_at = cycle_;
    rec.dispatched = true;
    seat.job_max_cycles = spec.max_cycles;
    if (spec.input_bytes > 0 || spec.output_bytes > 0) {
      const u64 region = cfg_.cluster.gmem_size;
      MP3D_CHECK(spec.input_bytes % 4 == 0 && spec.output_bytes % 4 == 0,
                 "staged regions must be whole words");
      MP3D_CHECK(
          (spec.input_bytes == 0 ||
           (spec.input_base >= cfg_.cluster.gmem_base &&
            spec.input_base + spec.input_bytes <= cfg_.cluster.gmem_base + region)) &&
              (spec.output_bytes == 0 ||
               (spec.output_base >= cfg_.cluster.gmem_base &&
                spec.output_base + spec.output_bytes <=
                    cfg_.cluster.gmem_base + region)),
          "staged regions must lie in the worker's gmem window");
      seat.home_slot =
          alloc_home_slot(std::max(spec.input_bytes, spec.output_bytes));
    }
    clusters_[k]->load_program(spec.kernel.program);
    loaded_[k] = 1;
    if (spec.kernel.init) {
      spec.kernel.init(*clusters_[k]);
    }
    if (spec.warm_icache) {
      clusters_[k]->warm_icaches();
    }
    if (spec.input_bytes > 0) {
      begin_staging_in(k, spec);
    } else {
      begin_running(k);
    }
  }
}

arch::RunResult System::labelled_finish(u32 k, bool eoc, bool deadlock,
                                        bool hit_max, u64 max_cycles) {
  if (num_clusters() == 1) {
    // Single-cluster back-compat: do not touch the collect label, so the
    // deposited timeline/trace bytes match a bare Cluster run exactly.
    return clusters_[k]->finish(eoc, deadlock, hit_max, max_cycles);
  }
  const std::string saved = obs::collect_label();
  const std::string mine = "c" + std::to_string(k);
  obs::set_collect_label(saved.empty() ? mine : saved + "." + mine);
  arch::RunResult result = clusters_[k]->finish(eoc, deadlock, hit_max, max_cycles);
  obs::set_collect_label(saved);
  return result;
}

void System::finish_job(u32 k, const JobSpec& spec, bool eoc, bool deadlock,
                        bool hit_max) {
  Seat& seat = seats_[k];
  JobRecord& rec = records_[seat.job];
  const u64 job_max =
      seat.job_max_cycles > 0 ? seat.job_max_cycles : sim::kNever;
  rec.result = labelled_finish(k, eoc, deadlock, hit_max, job_max);
  rec.eoc_at = cycle_;
  if (eoc && spec.kernel.verify) {
    rec.verify_error = spec.kernel.verify(*clusters_[k], rec.result);
  }
  if (eoc && spec.output_bytes > 0) {
    seat.staging_ticket =
        sdma_->push(k, C2cDescriptor{k, cfg_.home_cluster, spec.output_base,
                                     seat.home_slot, spec.output_bytes, 0});
    seat.state = ClusterState::kStagingOut;
    return;
  }
  rec.completed_at = cycle_;
  ++jobs_done_;
  seat.state = ClusterState::kIdle;
}

bool System::all_jobs_done() const { return jobs_done_ == records_.size(); }

u64 System::aggregate_activity() const {
  u64 total = sdma_->activity();
  for (const auto& cluster : clusters_) {
    total += cluster->activity();
  }
  return total;
}

sim::Cycle System::next_wake_event() const {
  sim::Cycle next = sdma_->next_event_cycle(cycle_);
  for (u32 k = 0; k < num_clusters(); ++k) {
    if (seats_[k].state == ClusterState::kRunning) {
      next = std::min(next, to_system_cycle(clusters_[k]->next_wake_event(),
                                            seats_[k].offset));
    }
  }
  return next;
}

void System::maybe_fast_forward(u64 max_cycles) {
  // Identical gating to Cluster::run: every running cluster must be
  // fast-forward enabled and fully quiescent (frozen staging clusters do
  // not veto — they have no work until their transfer lands). With no
  // cluster running, the system-wide setting (cluster 0's env-resolved
  // flag) decides whether staging waits may be skipped.
  bool any_running = false;
  for (u32 k = 0; k < num_clusters(); ++k) {
    if (seats_[k].state != ClusterState::kRunning) {
      continue;
    }
    any_running = true;
    if (!clusters_[k]->fast_forward_enabled() || !clusters_[k]->quiescent()) {
      return;
    }
  }
  if (!any_running && !fast_forward_) {
    return;
  }
  const sim::Cycle floor = cycle_ + 1;
  sim::Cycle bound = std::min<sim::Cycle>(
      max_cycles, last_activity_cycle_ + arch::Cluster::kDeadlockWindow);
  for (u32 k = 0; k < num_clusters(); ++k) {
    const Seat& seat = seats_[k];
    if (seat.state == ClusterState::kRunning && seat.job_max_cycles > 0) {
      bound = std::min(bound, to_system_cycle(seat.job_max_cycles, seat.offset));
    }
  }
  sim::Cycle target = std::min(bound, sdma_->next_event_cycle(cycle_));
  if (target <= floor) {
    return;
  }
  for (u32 k = 0; k < num_clusters(); ++k) {
    const Seat& seat = seats_[k];
    if (seat.state != ClusterState::kRunning) {
      continue;
    }
    const sim::Cycle local_target =
        clusters_[k]->fast_forward_target(target - seat.offset);
    target = std::min(target, to_system_cycle(local_target, seat.offset));
    if (target <= floor) {
      return;
    }
  }
  const u64 span = target - cycle_ - 1;
  for (u32 k = 0; k < num_clusters(); ++k) {
    if (seats_[k].state == ClusterState::kRunning) {
      clusters_[k]->skip_to(target - seats_[k].offset);
    }
  }
  sdma_->skip_cycles(span);
  cycle_ += span;
}

SystemResult System::assemble_result(bool deadlock, bool hit_max,
                                     u64 /*max_cycles*/,
                                     std::vector<JobSpec>& /*jobs*/) {
  SystemResult result;
  result.cycles = cycle_;
  result.deadlock = deadlock;
  result.hit_max_cycles = hit_max;
  result.jobs = std::move(records_);
  records_.clear();
  result.ok = !deadlock && !hit_max &&
              std::all_of(result.jobs.begin(), result.jobs.end(),
                          [](const JobRecord& job) { return job.ok(); });
  if (num_clusters() == 1) {
    // Bare-cluster counter names (additive when several jobs ran).
    for (const JobRecord& job : result.jobs) {
      if (job.dispatched) {
        result.counters.merge(job.result.counters);
      }
    }
  } else {
    for (const JobRecord& job : result.jobs) {
      if (!job.dispatched) {
        continue;
      }
      const std::string prefix = "c" + std::to_string(job.cluster) + ".";
      for (const auto& [name, value] : job.result.counters.all()) {
        result.counters.bump(prefix + name, value);
      }
    }
  }
  icn_->add_counters(result.counters);
  sdma_->add_counters(result.counters);
  result.counters.set("cycles", cycle_);
  return result;
}

SystemResult System::run_jobs(std::vector<JobSpec> jobs, u64 max_cycles) {
  reset_run_state();
  scheduler_.reset(jobs.size());
  records_.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    records_[i] = JobRecord{};
    records_[i].name = jobs[i].name;
  }
  while (cycle_ < max_cycles && !all_jobs_done()) {
    dispatch_jobs(jobs);
    maybe_fast_forward(max_cycles);
    const sim::Cycle now = cycle_ + 1;
    sdma_->step_component(now);
    // Staging transitions ride the same cycle their transfer retires in:
    // the system DMA steps before the clusters (mirroring the cluster's
    // gmem-before-cores phase order), so a landed input lets its cluster
    // start this very cycle.
    for (u32 k = 0; k < num_clusters(); ++k) {
      Seat& seat = seats_[k];
      if (seat.state == ClusterState::kStagingIn &&
          sdma_->retired(k) >= seat.staging_ticket) {
        begin_running(k);
      } else if (seat.state == ClusterState::kStagingOut &&
                 sdma_->retired(k) >= seat.staging_ticket) {
        records_[seat.job].completed_at = now;
        ++jobs_done_;
        seat.state = ClusterState::kIdle;
      }
    }
    for (u32 k = 0; k < num_clusters(); ++k) {
      if (seats_[k].state == ClusterState::kRunning) {
        clusters_[k]->step_component(now - seats_[k].offset);
      }
    }
    ++cycle_;
    for (u32 k = 0; k < num_clusters(); ++k) {
      Seat& seat = seats_[k];
      if (seat.state != ClusterState::kRunning) {
        continue;
      }
      arch::Cluster& cluster = *clusters_[k];
      const JobSpec& spec = jobs[seat.job];
      if (cluster.eoc_signaled()) {
        finish_job(k, spec, true, false, false);
      } else if (cluster.all_cores_halted()) {
        finish_job(k, spec, false, false, false);
      } else if (seat.job_max_cycles > 0 &&
                 cycle_ - seat.offset >= seat.job_max_cycles) {
        finish_job(k, spec, false, false, true);
      }
    }
    const u64 activity = aggregate_activity();
    if (activity != last_activity_value_) {
      last_activity_value_ = activity;
      last_activity_cycle_ = cycle_;
    } else if (cycle_ - last_activity_cycle_ >= arch::Cluster::kDeadlockWindow) {
      if (next_wake_event() != sim::kNever) {
        last_activity_cycle_ = cycle_;  // long wait, not a hang (see Cluster)
      } else {
        std::string diag;
        for (u32 k = 0; k < num_clusters(); ++k) {
          if (seats_[k].state == ClusterState::kRunning) {
            diag = "cluster " + std::to_string(k) + ": " +
                   clusters_[k]->deadlock_diagnostic();
            break;
          }
        }
        MP3D_WARN("system deadlock: " << diag);
        for (u32 k = 0; k < num_clusters(); ++k) {
          if (seats_[k].state == ClusterState::kRunning) {
            finish_job(k, jobs[seats_[k].job], false, true, false);
          }
        }
        return assemble_result(true, false, max_cycles, jobs);
      }
    }
  }
  if (!all_jobs_done()) {
    for (u32 k = 0; k < num_clusters(); ++k) {
      if (seats_[k].state == ClusterState::kRunning) {
        finish_job(k, jobs[seats_[k].job], false, false, true);
      }
    }
    return assemble_result(false, true, max_cycles, jobs);
  }
  return assemble_result(false, false, max_cycles, jobs);
}

SystemResult System::run_kernel(const kernels::Kernel& kernel, u64 max_cycles,
                                bool warm_icache) {
  JobSpec spec;
  spec.name = kernel.name;
  spec.kernel = kernel;
  spec.warm_icache = warm_icache;
  std::vector<JobSpec> jobs;
  jobs.push_back(std::move(spec));
  return run_jobs(std::move(jobs), max_cycles);
}

}  // namespace mp3d::sys
