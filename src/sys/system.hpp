// SPDX-License-Identifier: Apache-2.0
// The hierarchical multi-cluster System: N identical Clusters, each owning
// one shard of the partitioned global memory, joined by the inter-cluster
// interconnect (ClusterIcn) and cluster-to-cluster DMA (SysDma), driven by
// one run loop through the shared sim::SteppedComponent interface.
//
// System::run_jobs shards independent jobs across the clusters:
//
//   assign    the scheduler hands a job to an idle cluster; the kernel's
//             program is loaded and its init hook runs (exactly the bare
//             run_kernel recipe);
//   stage in  when the job declares an input region, its bytes are homed
//             on the home cluster's shard and DMA'd to the worker across
//             the mesh — the cluster stays frozen until the copy retires;
//   run       the cluster steps every system cycle (its local clock is the
//             system clock minus the cycle its program started);
//   stage out when the job declares an output region, the worker's result
//             is DMA'd back to the home shard before the cluster is
//             considered idle again.
//
// The loop reuses Cluster::run's machinery piece for piece — the same
// phase ordering, the same idle-cycle fast-forward oracle (the jump is the
// min over every running cluster's target plus the system DMA's next
// event), and the same deadlock watchdog window — so a single-cluster
// System run is bit-identical to a bare Cluster::run: same RunResult, same
// counter names, same timeline and trace bytes.
//
// Counter namespacing: at N == 1 the job's counters merge into
// SystemResult::counters unprefixed (bare-cluster names); at N > 1 each
// job's counters are prefixed "c<k>." (additive across jobs that shared a
// cluster) and the unprefixed names are the system-level sys.* counters
// plus "cycles". Per-cluster telemetry deposits are labelled ".c<k>" at
// N > 1, giving the merged Perfetto export one pseudo-process per cluster.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/cluster.hpp"
#include "kernels/kernel.hpp"
#include "sys/icn.hpp"
#include "sys/params.hpp"
#include "sys/scheduler.hpp"
#include "sys/sys_dma.hpp"

namespace mp3d::sys {

/// One job: a kernel plus its staging contract. Regions are byte windows
/// in the *worker* cluster's address space; when `input_bytes` is nonzero
/// the region's contents (written by the kernel's init hook) are homed on
/// the home shard and transferred in over the mesh before the cluster
/// starts, and when `output_bytes` is nonzero the region is transferred
/// back to the home shard after EOC. Zero-byte regions skip staging.
struct JobSpec {
  std::string name;
  kernels::Kernel kernel;
  u32 input_base = 0;
  u64 input_bytes = 0;
  u32 output_base = 0;
  u64 output_bytes = 0;
  u64 max_cycles = 0;  ///< per-job local-cycle cap; 0 = inherit the run's
  bool warm_icache = false;
};

/// What happened to one job.
struct JobRecord {
  std::string name;
  u32 cluster = 0;           ///< worker cluster the scheduler picked
  sim::Cycle assigned_at = 0;   ///< system cycle the job was dispatched
  sim::Cycle started_at = 0;    ///< system cycle the cluster began stepping
  sim::Cycle eoc_at = 0;        ///< system cycle the run ended
  sim::Cycle completed_at = 0;  ///< system cycle the write-back retired
  bool dispatched = false;      ///< false: the run ended before assignment
  arch::RunResult result;       ///< bare-cluster semantics, local cycles
  std::string verify_error;     ///< kernel verify hook's message ("" = pass)

  bool ok() const { return dispatched && result.ok() && verify_error.empty(); }
};

struct SystemResult {
  u64 cycles = 0;  ///< system cycles until the last job completed
  bool ok = false;
  bool deadlock = false;
  bool hit_max_cycles = false;
  std::vector<JobRecord> jobs;
  sim::CounterSet counters;  ///< see namespacing note in the header comment
};

class System {
 public:
  explicit System(SystemConfig cfg);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  const SystemConfig& config() const { return cfg_; }
  u32 num_clusters() const { return static_cast<u32>(clusters_.size()); }
  arch::Cluster& cluster(u32 k) { return *clusters_[k]; }
  const arch::Cluster& cluster(u32 k) const { return *clusters_[k]; }
  ClusterIcn& icn() { return *icn_; }
  SysDma& sys_dma() { return *sdma_; }

  /// Shard one run across the clusters: dispatch every job per the
  /// configured policy, stage inputs/outputs through the home shard, and
  /// drive all clusters to completion (or `max_cycles` system cycles).
  SystemResult run_jobs(std::vector<JobSpec> jobs, u64 max_cycles);

  /// The bare-cluster path: one job, no staging, on cluster 0. At
  /// num_clusters == 1 this is bit-identical to run_kernel on a Cluster.
  SystemResult run_kernel(const kernels::Kernel& kernel, u64 max_cycles,
                          bool warm_icache = false);

  /// Reset every component (clusters, icn, sys dma) to its post-load
  /// state. run_jobs does this implicitly on entry, so back-to-back runs
  /// of the same job list are identical.
  void reset_run_state();

  sim::Cycle now() const { return cycle_; }

 private:
  enum class ClusterState : u8 {
    kIdle,       ///< no job; eligible for dispatch
    kStagingIn,  ///< program loaded, waiting for the input transfer
    kRunning,    ///< stepping every system cycle
    kStagingOut  ///< run finished, waiting for the write-back transfer
  };
  struct Seat {
    ClusterState state = ClusterState::kIdle;
    std::size_t job = 0;          ///< index into jobs_ (valid unless kIdle)
    sim::Cycle offset = 0;        ///< system cycle of the job's local cycle 0
    u64 job_max_cycles = 0;       ///< effective local-cycle cap
    u64 staging_ticket = 0;       ///< SysDma ticket the seat waits on
    u32 home_slot = 0;            ///< staging slot in the home shard
  };

  void dispatch_jobs(std::vector<JobSpec>& jobs);
  void begin_staging_in(u32 k, const JobSpec& spec);
  void begin_running(u32 k);
  void finish_job(u32 k, const JobSpec& spec, bool eoc, bool deadlock,
                  bool hit_max);
  /// Cluster k's finish(), with the telemetry collect label suffixed
  /// ".c<k>" at N > 1 so merged traces keep per-cluster pseudo-processes.
  arch::RunResult labelled_finish(u32 k, bool eoc, bool deadlock, bool hit_max,
                                  u64 max_cycles);
  bool all_jobs_done() const;
  u64 aggregate_activity() const;
  /// Earliest system cycle any component can make progress (the deadlock
  /// watchdog's oracle, kNever when everything is drained).
  sim::Cycle next_wake_event() const;
  void maybe_fast_forward(u64 max_cycles);
  u32 alloc_home_slot(u64 bytes);
  SystemResult assemble_result(bool deadlock, bool hit_max, u64 max_cycles,
                               std::vector<JobSpec>& jobs);

  SystemConfig cfg_;
  std::vector<std::unique_ptr<arch::Cluster>> clusters_;
  std::unique_ptr<ClusterIcn> icn_;
  std::unique_ptr<SysDma> sdma_;
  JobScheduler scheduler_;
  bool fast_forward_ = true;  ///< cluster 0's env-resolved setting

  sim::Cycle cycle_ = 0;
  std::vector<Seat> seats_;
  std::vector<u8> loaded_;  ///< clusters with a program image (resettable)
  std::vector<JobRecord> records_;
  std::size_t jobs_done_ = 0;

  // Home-shard staging slots: a descending bump allocator from the top of
  // the home cluster's gmem window (kernel code/data grow from the bottom).
  u64 home_slot_top_ = 0;

  // Deadlock watchdog (same window as Cluster::run, on aggregate activity).
  u64 last_activity_value_ = 0;
  sim::Cycle last_activity_cycle_ = 0;
};

}  // namespace mp3d::sys
