// SPDX-License-Identifier: Apache-2.0
// The full co-exploration (the paper's contribution) on the experiment
// engine: one scenario per {flow} x {capacity} configuration, each
// implementing through the 2D or Macro-3D flow and combining with the
// workload model; the report picks the PPA sweet spots as the paper's
// conclusion does. Try `--list`, `--filter 3D`, `--jobs 4`, `--json`.
#include <cstdio>

#include "common/table.hpp"
#include "core/mempool3d.hpp"
#include "exp/suite.hpp"

using namespace mp3d;

namespace {

exp::Suite make_suite(const exp::CliOptions&) {
  exp::Suite suite;
  suite.name = "design_space_explorer";
  suite.title = "architecture x technology co-exploration (8 configurations)";

  exp::SweepGrid grid;
  grid.axis("flow", std::vector<std::string>{"2D", "3D"})
      .axis("cap_mib", std::vector<u64>{1, 2, 4, 8});
  grid.expand(suite.registry, [](const exp::SweepPoint& p) {
    const phys::Flow flow = p.str("flow") == "3D" ? phys::Flow::k3D : phys::Flow::k2D;
    const u64 capacity = MiB(p.u("cap_mib"));
    exp::Scenario s;
    s.name = p.str("flow") + "-" + p.str("cap_mib") + "MiB";
    s.description = "co-exploration operating point, " + p.str("flow") + " flow, " +
                    p.str("cap_mib") + " MiB SPM";
    s.run = [flow, capacity]() {
      const core::CoExplorer explorer;
      const core::OperatingPoint& pt = explorer.at(flow, capacity);
      exp::ScenarioOutput out;
      out.metric("footprint_mm2", pt.impl.group.footprint_mm2)
          .metric("freq_mhz", pt.freq_ghz * 1e3)
          .metric("power_mw", pt.power_mw)
          .metric("runtime_ms", pt.runtime_ms)
          .metric("energy_mj", pt.energy_mj)
          .metric("performance", pt.performance)
          .metric("efficiency", pt.efficiency)
          .metric("edp", pt.edp)
          .metric("perf_gain", explorer.performance_gain(pt))
          .metric("eff_gain", explorer.efficiency_gain(pt))
          .metric("edp_var", explorer.edp_variation(pt));
      out.row(exp::Row()
                  .cell("flow", std::string(phys::flow_name(flow)))
                  .cell("capacity_mib", capacity / MiB(1))
                  .cell("footprint_mm2", fmt_fixed(pt.impl.group.footprint_mm2, 2))
                  .cell("freq_mhz", fmt_fixed(pt.freq_ghz * 1e3, 0))
                  .cell("power_mw", fmt_fixed(pt.power_mw, 0))
                  .cell("runtime_ms", fmt_fixed(pt.runtime_ms, 1))
                  .cell("energy_mj", fmt_fixed(pt.energy_mj, 1))
                  .cell("perf_gain", explorer.performance_gain(pt), 4)
                  .cell("eff_gain", explorer.efficiency_gain(pt), 4)
                  .cell("edp_var", explorer.edp_variation(pt), 4));
      return out;
    };
    return s;
  });

  suite.report = [](const exp::SweepReport& report) {
    std::printf("%-10s %10s %9s %9s %10s %10s %9s %9s\n", "config", "fp [mm2]",
                "f [MHz]", "P [mW]", "run [ms]", "E [mJ]", "perf", "eff");
    for (const exp::ScenarioResult& r : report.results) {
      if (!r.ok()) {
        continue;
      }
      const auto m = [&](const char* key) {
        return report.metric(r.name, key).value_or(0.0);
      };
      std::printf("%-10s %10.2f %9.0f %9.0f %10.1f %10.1f %8.1f%% %8.1f%%\n",
                  r.name.c_str(), m("footprint_mm2"), m("freq_mhz"), m("power_mw"),
                  m("runtime_ms"), m("energy_mj"), m("perf_gain") * 100,
                  m("eff_gain") * 100);
    }

    // Pick the sweet spots, as the paper's conclusion does.
    const exp::ScenarioResult* best_perf = nullptr;
    const exp::ScenarioResult* best_eff = nullptr;
    const exp::ScenarioResult* best_edp = nullptr;
    for (const exp::ScenarioResult& r : report.results) {
      if (!r.ok()) {
        continue;
      }
      const auto better = [&](const exp::ScenarioResult* cur, const char* key,
                              bool lower) {
        if (cur == nullptr) {
          return true;
        }
        const double a = report.metric(r.name, key).value_or(0.0);
        const double b = report.metric(cur->name, key).value_or(0.0);
        return lower ? a < b : a > b;
      };
      if (better(best_perf, "performance", false)) best_perf = &r;
      if (better(best_eff, "efficiency", false)) best_eff = &r;
      if (better(best_edp, "edp", true)) best_edp = &r;
    }
    if (best_perf && best_eff && best_edp) {
      std::printf(
          "\nfastest: %s (%+.1f %%), most efficient: %s (%+.1f %%), lowest EDP: "
          "%s (%+.1f %%)\n",
          best_perf->name.c_str(),
          report.metric(best_perf->name, "perf_gain").value_or(0.0) * 100,
          best_eff->name.c_str(),
          report.metric(best_eff->name, "eff_gain").value_or(0.0) * 100,
          best_edp->name.c_str(),
          report.metric(best_edp->name, "edp_var").value_or(0.0) * 100);
    }
    std::printf(
        "(paper: 3D designs win across the board; 3D-1MiB is the efficiency/EDP\n"
        " optimum, the largest 3D designs are the fastest.)\n");
  };
  return suite;
}

}  // namespace

int main(int argc, char** argv) { return exp::suite_main(argc, argv, make_suite); }
