// SPDX-License-Identifier: Apache-2.0
// The full co-exploration (the paper's contribution): implement all eight
// configurations through the 2D and Macro-3D flows, combine with the
// workload model, and report the PPA + performance/efficiency landscape.
#include <cstdio>

#include "core/mempool3d.hpp"

using namespace mp3d;

int main() {
  core::CoExplorer explorer;

  std::printf("%-4s %-6s %10s %9s %9s %10s %10s %9s %9s\n", "flow", "SPM",
              "fp [mm2]", "f [MHz]", "P [mW]", "run [ms]", "E [mJ]", "perf", "eff");
  const auto& base = explorer.baseline();
  for (const core::OperatingPoint& p : explorer.points()) {
    std::printf("%-4s %-6llu %10.2f %9.0f %9.0f %10.1f %10.1f %8.1f%% %8.1f%%\n",
                phys::flow_name(p.impl.config.flow),
                static_cast<unsigned long long>(p.impl.config.spm_capacity / MiB(1)),
                p.impl.group.footprint_mm2, p.freq_ghz * 1e3, p.power_mw, p.runtime_ms,
                p.energy_mj, explorer.performance_gain(p) * 100,
                explorer.efficiency_gain(p) * 100);
  }
  std::printf("\nbaseline: 2D 1 MiB, runtime %.1f ms, energy %.1f mJ\n",
              base.runtime_ms, base.energy_mj);

  // Pick the sweet spots, as the paper's conclusion does.
  const core::OperatingPoint* best_perf = &base;
  const core::OperatingPoint* best_eff = &base;
  const core::OperatingPoint* best_edp = &base;
  for (const auto& p : explorer.points()) {
    if (p.performance > best_perf->performance) best_perf = &p;
    if (p.efficiency > best_eff->efficiency) best_eff = &p;
    if (p.edp < best_edp->edp) best_edp = &p;
  }
  auto name = [](const core::OperatingPoint& p) {
    return std::string(phys::flow_name(p.impl.config.flow)) + "-" +
           std::to_string(p.impl.config.spm_capacity / MiB(1)) + "MiB";
  };
  std::printf("fastest: %s (%+.1f %%), most efficient: %s (%+.1f %%), lowest EDP: %s "
              "(%+.1f %%)\n",
              name(*best_perf).c_str(), explorer.performance_gain(*best_perf) * 100,
              name(*best_eff).c_str(), explorer.efficiency_gain(*best_eff) * 100,
              name(*best_edp).c_str(), explorer.edp_variation(*best_edp) * 100);
  std::printf("(paper: 3D designs win across the board; 3D-1MiB is the efficiency/EDP\n"
              " optimum, the largest 3D designs are the fastest.)\n");
  return 0;
}
