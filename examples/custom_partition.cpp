// SPDX-License-Identifier: Apache-2.0
// Use the physical-design API directly: compile SRAM macros, explore tile
// partitionings by hand, and compare against the automatic partitioner
// (the paper's §IV study).
#include <cstdio>

#include "core/mempool3d.hpp"

using namespace mp3d;
using namespace mp3d::phys;

int main() {
  const Technology& tech = Technology::node28();

  std::printf("SRAM macro sweep (the four paper bank sizes):\n");
  for (const u32 words : {256U, 512U, 1024U, 2048U}) {
    std::printf("  %s\n", compile_sram(tech, words).to_string().c_str());
  }

  std::printf("\nautomatic partitioning per capacity (3D flow):\n");
  for (const u64 mib : {1, 2, 4, 8}) {
    const arch::ClusterConfig cfg = arch::ClusterConfig::mempool(MiB(mib));
    const TileImpl tile = implement_tile(cfg, tech, Flow::k3D);
    std::printf("  %s\n", tile.to_string().c_str());
  }

  std::printf("\nmanual what-if: pack 15 8-KiB banks (the paper's Fig. 3c memory die):\n");
  const SramMacro bank8k = compile_sram(tech, 2048);
  std::vector<SramMacro> fifteen(15, bank8k);
  const PackResult grid = pack_best(fifteen, 1.5);
  std::printf("  %.3f x %.3f mm (%.1f %% utilization, %u shelves)\n", grid.width_mm,
              grid.height_mm, grid.utilization() * 100, grid.shelves);
  return 0;
}
