// SPDX-License-Identifier: Apache-2.0
// Run every kernel in the library on the simulator and print a scorecard —
// a template for bringing up your own kernels on the MemPool runtime
// (crt0 + sense-reversing barrier + SPM allocator).
#include <cstdio>

#include "core/mempool3d.hpp"

using namespace mp3d;

int main() {
  arch::ClusterConfig cfg = arch::ClusterConfig::mini();
  std::printf("running on: %s\n\n", cfg.to_string().c_str());
  std::printf("%-16s %10s %8s %12s %12s\n", "kernel", "cycles", "IPC", "bank-confl",
              "gmem bytes");

  const std::array<i32, 9> edge = {-1, -1, -1, -1, 8, -1, -1, -1, -1};
  kernels::MatmulParams mm;
  mm.m = 32;
  mm.t = 16;
  const std::vector<kernels::Kernel> zoo = {
      kernels::build_memcpy(cfg, 4096),
      kernels::build_axpy(cfg, 2048, 3),
      kernels::build_dotp(cfg, 2048),
      kernels::build_conv2d(cfg, 32, 32, edge),
      kernels::build_matmul(cfg, mm),
  };

  for (const kernels::Kernel& kernel : zoo) {
    arch::Cluster cluster(cfg);
    const arch::RunResult r = kernels::run_kernel(cluster, kernel, 50'000'000);
    std::printf("%-16s %10llu %8.2f %12llu %12llu\n", kernel.name.c_str(),
                static_cast<unsigned long long>(r.cycles), r.ipc(),
                static_cast<unsigned long long>(r.counters.get("bank.conflicts")),
                static_cast<unsigned long long>(r.counters.get("gmem.bytes")));
  }
  std::printf("\nall kernels verified against host references.\n");
  return 0;
}
