// SPDX-License-Identifier: Apache-2.0
// The paper's architectural argument (Figure 6) end to end, written as a
// 20-line experiment-engine registration: sweep SPM capacity and off-chip
// bandwidth as a declarative SweepGrid, evaluate the calibrated matmul
// cycle model at M = 326400 in each scenario, and show where bigger tiles
// pay off. Try `--list`, `--filter cap=8`, `--jobs 4`, `--json`.
#include <cstdio>

#include "common/table.hpp"
#include "core/mempool3d.hpp"
#include "exp/suite.hpp"

using namespace mp3d;

namespace {

exp::Suite make_suite(const exp::CliOptions&) {
  exp::Suite suite;
  suite.name = "capacity_exploration";
  suite.title = "cycle counts for C = A x B, M = 326400 (x1e9 cycles)";

  exp::SweepGrid grid;
  grid.axis("bw", std::vector<u64>{4, 8, 16, 32, 64})
      .axis("cap_mib", std::vector<u64>{1, 2, 4, 8});
  grid.expand(suite.registry, [](const exp::SweepPoint& p) {
    exp::Scenario s;
    s.name = "bw=" + p.str("bw") + "/cap=" + p.str("cap_mib") + "MiB";
    s.description = "matmul cycle model at " + p.str("cap_mib") + " MiB, " +
                    p.str("bw") + " B/cycle";
    const u64 capacity = MiB(p.u("cap_mib"));
    const double bw = p.d("bw");
    s.run = [capacity, bw]() {
      const u32 t = kernels::MatmulParams::paper_tile_dim(capacity);
      model::MatmulWorkload w;
      w.m = 326400;
      w.t = t;
      w.bw_bytes_per_cycle = bw;
      const double cycles = model::matmul_cycles(w, model::default_calibration(t)).total();
      exp::ScenarioOutput out;
      out.metric("t", t).metric("giga_cycles", cycles / 1e9);
      out.row(exp::Row()
                  .cell("bw", fmt_fixed(bw, 0))
                  .cell("capacity_mib", capacity / MiB(1))
                  .cell("t", static_cast<u64>(t))
                  .cell("giga_cycles", cycles / 1e9, 2));
      return out;
    };
    return s;
  });

  suite.report = [](const exp::SweepReport& report) {
    std::printf("tile dims: ");
    for (const u64 mib : {1, 2, 4, 8}) {
      std::printf("%llu MiB -> t = %u  ", static_cast<unsigned long long>(mib),
                  kernels::MatmulParams::paper_tile_dim(MiB(mib)));
    }
    std::printf("\n\ncycle counts for C = A x B, M = 326400 (x1e9 cycles):\n");
    std::printf("%10s", "BW [B/c]");
    for (const u64 mib : {1, 2, 4, 8}) {
      std::printf("  %6llu MiB", static_cast<unsigned long long>(mib));
    }
    std::printf("\n");
    for (const u64 bw : {4, 8, 16, 32, 64}) {
      std::printf("%10llu", static_cast<unsigned long long>(bw));
      for (const u64 mib : {1, 2, 4, 8}) {
        const auto c = report.metric("bw=" + std::to_string(bw) + "/cap=" +
                                         std::to_string(mib) + "MiB",
                                     "giga_cycles");
        std::printf("  %10.2f", c.value_or(0.0));
      }
      std::printf("\n");
    }
    std::printf("\neach input element is loaded M/t times: %s\n",
                "256 -> 1275x, 384 -> 850x, 544 -> 600x, 800 -> 408x");
    std::printf("bigger SPM = more reuse + longer phases = less static overhead.\n");
  };
  return suite;
}

}  // namespace

int main(int argc, char** argv) { return exp::suite_main(argc, argv, make_suite); }
