// SPDX-License-Identifier: Apache-2.0
// The paper's architectural argument (Figure 6) end to end: sweep SPM
// capacity and off-chip bandwidth, evaluate the calibrated matmul cycle
// model at M = 326400, and show where bigger tiles pay off.
#include <cstdio>

#include "core/mempool3d.hpp"

using namespace mp3d;

int main() {
  std::vector<std::pair<u64, model::MatmulCalibration>> calibrations;
  for (const u64 mib : {1, 2, 4, 8}) {
    const u32 t = kernels::MatmulParams::paper_tile_dim(MiB(mib));
    calibrations.emplace_back(MiB(mib), model::default_calibration(t));
    std::printf("%llu MiB -> t = %u (%s)\n", static_cast<unsigned long long>(mib), t,
                model::default_calibration(t).to_string().c_str());
  }

  std::printf("\ncycle counts for C = A x B, M = 326400 (x1e9 cycles):\n");
  std::printf("%10s", "BW [B/c]");
  for (const auto& [cap, cal] : calibrations) {
    std::printf("  %6llu MiB", static_cast<unsigned long long>(cap / MiB(1)));
  }
  std::printf("\n");
  for (const double bw : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    std::printf("%10.0f", bw);
    for (const auto& [cap, cal] : calibrations) {
      model::MatmulWorkload w;
      w.m = 326400;
      w.t = cal.t;
      w.bw_bytes_per_cycle = bw;
      std::printf("  %10.2f", model::matmul_cycles(w, cal).total() / 1e9);
    }
    std::printf("\n");
  }

  std::printf("\neach input element is loaded M/t times: %s\n",
              "256 -> 1275x, 384 -> 850x, 544 -> 600x, 800 -> 408x");
  std::printf("bigger SPM = more reuse + longer phases = less static overhead.\n");
  return 0;
}
