// SPDX-License-Identifier: Apache-2.0
// Quickstart: build a MemPool cluster, run a verified matrix
// multiplication on the cycle-accurate simulator, and print what happened.
#include <cstdio>

#include "core/mempool3d.hpp"

using namespace mp3d;

int main() {
  // A scaled-down cluster (16 cores) so the example finishes instantly;
  // arch::ClusterConfig::mempool(MiB(1)) gives the paper's 256-core shape.
  arch::ClusterConfig cfg = arch::ClusterConfig::mini();
  arch::Cluster cluster(cfg);
  std::printf("cluster: %s\n", cfg.to_string().c_str());

  // The paper's workload at toy scale: C = A x B with 32x32 matrices,
  // tiled into 16x16 SPM tiles (memory phase -> barrier -> compute phase).
  kernels::MatmulParams params;
  params.m = 32;
  params.t = 16;
  const kernels::Kernel kernel = kernels::build_matmul(cfg, params);

  // run_kernel loads the program, initializes A/B, runs to completion and
  // verifies C against a host reference (throws on any mismatch).
  const arch::RunResult result = kernels::run_kernel(cluster, kernel, 10'000'000);

  std::printf("matmul %ux%u (t=%u) finished in %llu cycles, IPC %.1f\n", params.m,
              params.m, params.t, static_cast<unsigned long long>(result.cycles),
              result.ipc());
  const kernels::MatmulPhaseTimes times = kernels::extract_phase_times(result);
  std::printf("  memory phase  : %.0f cycles/chunk\n", times.mem_cycles_per_chunk);
  std::printf("  compute phase : %.0f cycles/chunk\n", times.compute_cycles_per_chunk);
  std::printf("  bank conflicts: %llu\n",
              static_cast<unsigned long long>(result.counters.get("bank.conflicts")));
  std::printf("  off-chip bytes: %llu\n",
              static_cast<unsigned long long>(result.counters.get("gmem.bytes")));
  std::printf("verification passed.\n");
  return 0;
}
